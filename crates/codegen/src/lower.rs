//! Lowering from an elaborated design to the compiled netlist IR.
//!
//! Lowering resolves every name to an arena slot, compiles every expression
//! and statement to bytecode, checks the continuous-assignment graph for the
//! properties the dirty-bit scheduler relies on (single pure driver per net,
//! no combinational cycles), and levelizes the nodes topologically. Designs
//! outside that envelope — multiply-driven nets, combinational system calls,
//! non-scalar assign targets — return [`VlogError::Unsupported`], which the
//! runtime treats as "keep this program on the interpreter".

use crate::ir::{AlwaysProg, Code, CombNode, CompiledProgram, MemDecl, NetDecl, Op, SlotRef, Val};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use synergy_interp::{expr_to_lvalue, stmt_reads, string_lit_bits, task_string_arg, TaskEffect};
use synergy_transform::normalize::{fold_expr, plan_unroll};
use synergy_vlog::ast::{Assign, Expr, LValue, Stmt, SystemTask, TaskKind};
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::parser::const_eval;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// Longest `for`-loop the lowering will unroll at compile time; longer loops
/// stay dynamic (loop-counter bytecode).
const MAX_UNROLL_ITERS: usize = 256;

/// Budget on the bytecode a single unrolled loop (including nested unrolled
/// loops) may emit; exceeding it rolls the loop back to its dynamic form.
const MAX_UNROLL_OPS: usize = 32_768;

/// Lowers an elaborated module into a [`CompiledProgram`].
pub fn lower(module: &ElabModule) -> VlogResult<CompiledProgram> {
    let mut lw = Lowerer::new(module);
    lw.declare_vars();
    let assigns = lw.lower_assigns()?;
    let always = lw.lower_always()?;
    let initials = lw.lower_initials()?;
    Ok(CompiledProgram {
        name: module.name.clone(),
        nets: lw.nets,
        mems: lw.mems,
        slots: lw.slots,
        consts: lw.consts,
        strings: lw.strings,
        effects: lw.effects,
        comb: assigns.comb,
        net_deps: assigns.net_deps,
        mem_deps: assigns.mem_deps,
        net_driver: assigns.net_driver,
        mem_driver: assigns.mem_driver,
        always,
        initials,
        nb_sites: lw.nb_sites,
        nb_site_names: lw.nb_site_names,
        n_temps: lw.n_temps,
        n_loops: lw.n_loops,
    })
}

/// The levelized combinational network produced by [`Lowerer::lower_assigns`].
struct LoweredAssigns {
    comb: Vec<CombNode>,
    net_deps: Vec<Vec<u32>>,
    mem_deps: Vec<Vec<u32>>,
    net_driver: Vec<Option<u32>>,
    mem_driver: Vec<Option<u32>>,
}

struct Lowerer<'a> {
    module: &'a ElabModule,
    nets: Vec<NetDecl>,
    mems: Vec<MemDecl>,
    slots: BTreeMap<String, SlotRef>,
    consts: Vec<Val>,
    const_index: HashMap<Bits, u32>,
    strings: Vec<String>,
    effects: Vec<TaskEffect>,
    nb_sites: Vec<Code>,
    nb_site_names: Vec<String>,
    n_temps: u32,
    n_loops: u32,
    /// Compile-time bindings for enclosing unrolled-loop induction variables;
    /// reads of a bound variable fold to its current constant.
    unroll_env: Vec<(String, Bits)>,
}

impl<'a> Lowerer<'a> {
    fn new(module: &'a ElabModule) -> Self {
        Lowerer {
            module,
            nets: Vec::new(),
            mems: Vec::new(),
            slots: BTreeMap::new(),
            consts: Vec::new(),
            const_index: HashMap::new(),
            strings: Vec::new(),
            effects: Vec::new(),
            nb_sites: Vec::new(),
            nb_site_names: Vec::new(),
            n_temps: 0,
            n_loops: 0,
            unroll_env: Vec::new(),
        }
    }

    fn declare_vars(&mut self) {
        for (name, var) in &self.module.vars {
            let slot = match var.depth {
                Some(depth) => {
                    self.mems.push(MemDecl {
                        name: name.clone(),
                        width: var.width.max(1) as u32,
                        depth: depth as u32,
                        is_register: var.is_register(),
                    });
                    SlotRef::Mem((self.mems.len() - 1) as u32)
                }
                None => {
                    self.nets.push(NetDecl {
                        name: name.clone(),
                        width: var.width.max(1) as u32,
                        init: var.init.as_ref().map(|b| b.resize(var.width.max(1))),
                        is_register: var.is_register(),
                        is_port: var.port.is_some(),
                    });
                    SlotRef::Net((self.nets.len() - 1) as u32)
                }
            };
            self.slots.insert(name.clone(), slot);
        }
    }

    // ---------------------------------------------------------------- pools

    fn konst(&mut self, b: Bits) -> u32 {
        if let Some(&i) = self.const_index.get(&b) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(Val::from_bits(&b));
        self.const_index.insert(b, i);
        i
    }

    fn string_idx(&mut self, s: &str) -> u32 {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i as u32;
        }
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u32
    }

    fn effect_idx(&mut self, e: TaskEffect) -> u32 {
        if let Some(i) = self.effects.iter().position(|x| *x == e) {
            return i as u32;
        }
        self.effects.push(e);
        (self.effects.len() - 1) as u32
    }

    fn temp(&mut self) -> u32 {
        self.n_temps += 1;
        self.n_temps - 1
    }

    fn loop_slot(&mut self) -> u32 {
        self.n_loops += 1;
        self.n_loops - 1
    }

    fn slot(&self, name: &str) -> VlogResult<SlotRef> {
        self.slots
            .get(name)
            .copied()
            .ok_or_else(|| VlogError::Elaborate(format!("no such variable '{}'", name)))
    }

    // ---------------------------------------------------------- expressions

    /// Attempts to constant-fold `e` using the enclosing unrolled-loop
    /// bindings. Folding mirrors the interpreter's evaluation bit for bit
    /// (see [`synergy_transform::normalize::fold_expr`]).
    fn fold(&self, e: &Expr) -> Option<Bits> {
        let env = &self.unroll_env;
        fold_expr(e, &|name: &str| {
            env.iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, b)| b.clone())
        })
    }

    fn expr(&mut self, e: &Expr, code: &mut Code) -> VlogResult<()> {
        // Constant subtrees — including reads of unrolled induction
        // variables — collapse to a pooled constant.
        if !matches!(e, Expr::Literal(_) | Expr::StringLit(_)) {
            if let Some(b) = self.fold(e) {
                let i = self.konst(b);
                code.push(Op::PushConst(i));
                return Ok(());
            }
        }
        match e {
            Expr::Literal(b) => {
                let i = self.konst(b.clone());
                code.push(Op::PushConst(i));
            }
            Expr::StringLit(s) => {
                // Strings evaluate to their packed ASCII value, as in the
                // interpreter; fold to a constant at compile time.
                let i = self.konst(string_lit_bits(s));
                code.push(Op::PushConst(i));
            }
            Expr::Ident(name) => match self.slot(name)? {
                SlotRef::Net(i) => code.push(Op::PushNet(i)),
                SlotRef::Mem(i) => code.push(Op::PushMemElem0(i)),
            },
            Expr::Index(base, idx) => {
                if let Expr::Ident(name) = base.as_ref() {
                    if let SlotRef::Mem(m) = self.slot(name)? {
                        match self.fold(idx).map(|b| b.to_u64()) {
                            Some(elem) if elem <= u32::MAX as u64 => {
                                code.push(Op::MemReadConst {
                                    mem: m,
                                    elem: elem as u32,
                                });
                            }
                            _ => {
                                self.expr(idx, code)?;
                                code.push(Op::MemRead(m));
                            }
                        }
                        return Ok(());
                    }
                }
                self.expr(idx, code)?;
                self.expr(base, code)?;
                code.push(Op::BitSelect);
            }
            Expr::Slice(base, hi, lo) => {
                self.expr(base, code)?;
                let ch = const_eval(hi, &|_| None).map(|b| b.to_u64());
                let cl = const_eval(lo, &|_| None).map(|b| b.to_u64());
                match (ch, cl) {
                    (Some(h), Some(l)) if h <= u32::MAX as u64 && l <= u32::MAX as u64 => {
                        code.push(Op::SliceConst {
                            hi: h.max(l) as u32,
                            lo: h.min(l) as u32,
                        });
                    }
                    _ => {
                        self.expr(hi, code)?;
                        self.expr(lo, code)?;
                        code.push(Op::SliceDyn);
                    }
                }
            }
            Expr::Unary(op, a) => {
                self.expr(a, code)?;
                code.push(Op::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                self.expr(a, code)?;
                self.expr(b, code)?;
                code.push(Op::Binary(*op));
            }
            Expr::Ternary(c, a, b) => {
                // Short-circuit like the interpreter: only the taken branch
                // evaluates (and performs any environment effects).
                self.expr(c, code)?;
                let jz = code.len();
                code.push(Op::JumpIfZero(0));
                self.expr(a, code)?;
                let jend = code.len();
                code.push(Op::Jump(0));
                patch(code, jz);
                self.expr(b, code)?;
                patch(code, jend);
            }
            Expr::Concat(parts) => {
                if parts.is_empty() {
                    let i = self.konst(Bits::zero(1));
                    code.push(Op::PushConst(i));
                    return Ok(());
                }
                self.expr(&parts[0], code)?;
                for p in &parts[1..] {
                    self.expr(p, code)?;
                    code.push(Op::Concat2);
                }
            }
            Expr::Replicate(n, e) => {
                self.expr(n, code)?;
                self.expr(e, code)?;
                code.push(Op::ReplicateDyn);
            }
            Expr::SystemCall(kind, args) => match kind {
                TaskKind::Fopen => {
                    let path = match args.first() {
                        Some(Expr::StringLit(s)) => s.clone(),
                        _ => String::new(),
                    };
                    let i = self.string_idx(&path);
                    code.push(Op::Fopen(i));
                }
                TaskKind::Feof => {
                    match args.first() {
                        Some(e) => self.expr(e, code)?,
                        None => {
                            let i = self.konst(Bits::from_u64(32, 0));
                            code.push(Op::PushConst(i));
                        }
                    }
                    code.push(Op::Feof);
                }
                TaskKind::Time => code.push(Op::PushTime),
                TaskKind::Random => code.push(Op::Random),
                other => {
                    return Err(VlogError::Unsupported(format!(
                        "system task {} cannot be used in an expression",
                        other
                    )))
                }
            },
        }
        Ok(())
    }

    // --------------------------------------------------------------- stores

    /// Width of an lvalue (the interpreter's shared resolution).
    fn lvalue_width(&self, lv: &LValue) -> usize {
        synergy_interp::lvalue_width(self.module, lv)
    }

    /// Emits a store of the value currently on top of the stack into `lv`.
    fn store_from_stack(&mut self, lv: &LValue, code: &mut Code) -> VlogResult<()> {
        match lv {
            LValue::Ident(name) => match self.slot(name)? {
                SlotRef::Net(i) => code.push(Op::StoreNet(i)),
                SlotRef::Mem(_) => {
                    return Err(VlogError::Unsupported(format!(
                        "cannot assign whole memory '{}'",
                        name
                    )))
                }
            },
            LValue::Index(name, idx) => match self.slot(name)? {
                SlotRef::Mem(i) => match self.fold(idx).map(|b| b.to_u64()) {
                    Some(elem) if elem <= u32::MAX as u64 => {
                        code.push(Op::StoreMemConst {
                            mem: i,
                            elem: elem as u32,
                        });
                    }
                    _ => {
                        self.expr(idx, code)?;
                        code.push(Op::StoreMem(i));
                    }
                },
                SlotRef::Net(i) => {
                    self.expr(idx, code)?;
                    code.push(Op::StoreBit(i));
                }
            },
            LValue::Slice(name, hi, lo) => match self.slot(name)? {
                SlotRef::Net(i) => {
                    self.expr(hi, code)?;
                    self.expr(lo, code)?;
                    code.push(Op::StoreSliceDyn(i));
                }
                SlotRef::Mem(_) => {
                    return Err(VlogError::Unsupported(format!(
                        "part select on memory '{}' is not supported",
                        name
                    )))
                }
            },
            LValue::Concat(parts) => {
                // `{a, b} = rhs` assigns the high bits of rhs to `a`.
                let total: usize = parts.iter().map(|p| self.lvalue_width(p)).sum();
                code.push(Op::Resize(total.max(1) as u32));
                let t = self.temp();
                code.push(Op::StoreTemp(t));
                let mut offset = total;
                for part in parts {
                    let w = self.lvalue_width(part);
                    offset -= w;
                    code.push(Op::PushTemp(t));
                    code.push(Op::SliceConst {
                        hi: (offset + w - 1) as u32,
                        lo: offset as u32,
                    });
                    self.store_from_stack(part, code)?;
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- statements

    fn assign_stmt(&mut self, a: &Assign, code: &mut Code) -> VlogResult<()> {
        self.expr(&a.rhs, code)?;
        self.store_from_stack(&a.lhs, code)
    }

    fn stmt(&mut self, s: &Stmt, code: &mut Code) -> VlogResult<()> {
        if matches!(s, Stmt::Null) {
            return Ok(());
        }
        // Mirrors the interpreter's per-statement `finished` early return.
        let check = code.len();
        code.push(Op::CheckFinished(0));
        match s {
            Stmt::Block(stmts) | Stmt::Fork(stmts) => {
                // fork/join executes sequentially: a valid scheduling (§3.2).
                for sub in stmts {
                    self.stmt(sub, code)?;
                }
            }
            Stmt::Blocking(a) => self.assign_stmt(a, code)?,
            Stmt::NonBlocking(a) => {
                self.expr(&a.rhs, code)?;
                // The store program runs at the *update* step, when an
                // unrolled induction variable already holds its exit value —
                // so index expressions must read the live net, not the
                // per-iteration constant (mirrors the interpreter latching
                // the lvalue AST and evaluating indices at latch time).
                let saved_env = std::mem::take(&mut self.unroll_env);
                let mut store = vec![Op::PushValueReg];
                let result = self.store_from_stack(&a.lhs, &mut store);
                self.unroll_env = saved_env;
                result?;
                self.nb_sites.push(store);
                self.nb_site_names.push(a.lhs.targets().join(","));
                code.push(Op::NbSchedule((self.nb_sites.len() - 1) as u32));
            }
            Stmt::If { cond, then, other } => {
                self.expr(cond, code)?;
                let jz = code.len();
                code.push(Op::JumpIfZero(0));
                self.stmt(then, code)?;
                match other {
                    Some(e) => {
                        let jend = code.len();
                        code.push(Op::Jump(0));
                        patch(code, jz);
                        self.stmt(e, code)?;
                        patch(code, jend);
                    }
                    None => patch(code, jz),
                }
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                self.expr(expr, code)?;
                let t = self.temp();
                code.push(Op::StoreTemp(t));
                let mut arm_jumps: Vec<Vec<usize>> = Vec::with_capacity(arms.len());
                for arm in arms {
                    let mut jumps = Vec::with_capacity(arm.labels.len());
                    for label in &arm.labels {
                        self.expr(label, code)?;
                        code.push(Op::PushTemp(t));
                        code.push(Op::Binary(synergy_vlog::ast::BinaryOp::Eq));
                        jumps.push(code.len());
                        code.push(Op::JumpIfNonZero(0));
                    }
                    arm_jumps.push(jumps);
                }
                let mut ends = Vec::new();
                if let Some(d) = default {
                    self.stmt(d, code)?;
                }
                ends.push(code.len());
                code.push(Op::Jump(0));
                for (arm, jumps) in arms.iter().zip(arm_jumps) {
                    for j in jumps {
                        patch(code, j);
                    }
                    self.stmt(&arm.body, code)?;
                    ends.push(code.len());
                    code.push(Op::Jump(0));
                }
                for e in ends {
                    patch(code, e);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if !self.try_unroll(init, cond, step, body, code)? {
                    self.assign_stmt(init, code)?;
                    let slot = self.loop_slot();
                    code.push(Op::LoopInit(slot));
                    let head = code.len() as u32;
                    self.expr(cond, code)?;
                    let jend = code.len();
                    code.push(Op::JumpIfZero(0));
                    self.stmt(body, code)?;
                    // The step executes even after $finish (once), as in the
                    // interpreter's while loop.
                    self.assign_stmt(step, code)?;
                    code.push(Op::LoopCheck(slot));
                    code.push(Op::JumpIfNotFinished(head));
                    patch(code, jend);
                }
            }
            Stmt::Repeat { count, body } => {
                self.expr(count, code)?;
                let slot = self.loop_slot();
                code.push(Op::RepeatInit(slot));
                let head = code.len();
                code.push(Op::RepeatTest { slot, end: 0 });
                self.stmt(body, code)?;
                code.push(Op::JumpIfNotFinished(head as u32));
                let end = code.len() as u32;
                if let Op::RepeatTest { end: e, .. } = &mut code[head] {
                    *e = end;
                }
            }
            Stmt::SystemTask(task) => self.task_stmt(task, code)?,
            Stmt::Null => unreachable!(),
        }
        patch(code, check);
        Ok(())
    }

    fn task_stmt(&mut self, task: &SystemTask, code: &mut Code) -> VlogResult<()> {
        match task.kind {
            TaskKind::Display | TaskKind::Write => {
                for arg in &task.args {
                    match arg {
                        Expr::StringLit(s) => {
                            let i = self.string_idx(s);
                            code.push(Op::PrintStr(i));
                        }
                        other => {
                            self.expr(other, code)?;
                            code.push(Op::PrintVal);
                        }
                    }
                }
                code.push(Op::PrintFlush {
                    newline: task.kind == TaskKind::Display,
                });
            }
            TaskKind::Finish => {
                match task.args.first() {
                    Some(e) => self.expr(e, code)?,
                    None => {
                        let i = self.konst(Bits::from_u64(32, 0));
                        code.push(Op::PushConst(i));
                    }
                }
                code.push(Op::Finish);
            }
            TaskKind::Fclose => {
                if let Some(e) = task.args.first() {
                    self.expr(e, code)?;
                    code.push(Op::Fclose);
                }
            }
            TaskKind::Fread => {
                let (fd_expr, target) = match (task.args.first(), task.args.get(1)) {
                    (Some(fd), Some(target)) => (fd, target),
                    _ => {
                        return Err(VlogError::Unsupported(
                            "$fread requires a descriptor and a target".into(),
                        ))
                    }
                };
                let lhs = expr_to_lvalue(target)?;
                let width = self.lvalue_width(&lhs);
                self.expr(fd_expr, code)?;
                let fread_at = code.len();
                code.push(Op::Fread {
                    width: width as u32,
                    skip: 0,
                });
                code.push(Op::PushValueReg);
                self.store_from_stack(&lhs, code)?;
                let skip = code.len() as u32;
                if let Op::Fread { skip: s, .. } = &mut code[fread_at] {
                    *s = skip;
                }
            }
            TaskKind::Save => {
                let tag = task_string_arg(task.args.first());
                let i = self.effect_idx(TaskEffect::Save(tag));
                code.push(Op::Effect(i));
            }
            TaskKind::Restart => {
                let tag = task_string_arg(task.args.first());
                let i = self.effect_idx(TaskEffect::Restart(tag));
                code.push(Op::Effect(i));
            }
            TaskKind::Yield => {
                let i = self.effect_idx(TaskEffect::Yield);
                code.push(Op::Effect(i));
            }
            // Function-style tasks in statement position are evaluated for
            // their side effects.
            TaskKind::Fopen | TaskKind::Feof | TaskKind::Time | TaskKind::Random => {
                let call = Expr::SystemCall(task.kind, task.args.clone());
                self.expr(&call, code)?;
                code.push(Op::Pop);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ unrolling

    /// Attempts to unroll a bounded `for`-loop at compile time. Returns
    /// `Ok(false)` (and leaves `code` untouched) when the loop must stay
    /// dynamic: non-constant bounds, a body that writes the induction
    /// variable, too many iterations, or an emission-budget overrun.
    ///
    /// The emitted shape mirrors the interpreter's loop exactly, including
    /// `$finish` semantics: each iteration runs the (guarded) body, then the
    /// step store *unguarded* — the interpreter executes the step once more
    /// after `$finish` fires mid-body — and then exits the loop if finished.
    fn try_unroll(
        &mut self,
        init: &Assign,
        cond: &Expr,
        step: &Assign,
        body: &Stmt,
        code: &mut Code,
    ) -> VlogResult<bool> {
        let LValue::Ident(var) = &init.lhs else {
            return Ok(false);
        };
        let Some(SlotRef::Net(net)) = self.slots.get(var.as_str()).copied() else {
            return Ok(false);
        };
        let width = self.nets[net as usize].width as usize;
        let plan = {
            let env = &self.unroll_env;
            plan_unroll(init, cond, step, body, width, MAX_UNROLL_ITERS, &|name| {
                env.iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, b)| b.clone())
            })
        };
        let Some(plan) = plan else {
            return Ok(false);
        };

        let start = code.len();
        let init_const = self.konst(plan.values[0].clone());
        code.push(Op::PushConst(init_const));
        code.push(Op::StoreNet(net));
        let trips = plan.trip_count();
        let mut finish_exits = Vec::new();
        for k in 0..trips {
            self.unroll_env.push((var.clone(), plan.values[k].clone()));
            let lowered = self.stmt(body, code);
            self.unroll_env.pop();
            lowered?;
            let stepped = self.konst(plan.values[k + 1].clone());
            code.push(Op::PushConst(stepped));
            code.push(Op::StoreNet(net));
            if k + 1 < trips {
                finish_exits.push(code.len());
                code.push(Op::CheckFinished(0));
            }
            if code.len() - start > MAX_UNROLL_OPS {
                // Too much straight-line code: roll back to the dynamic form.
                // (Orphaned constants/NB sites from the abandoned attempt are
                // unreachable and harmless.)
                code.truncate(start);
                return Ok(false);
            }
        }
        for at in finish_exits {
            patch(code, at);
        }
        Ok(true)
    }

    // -------------------------------------------------------- combinational

    /// Collects the slot(s) an assignment target writes, with the region of
    /// each write when it is a compile-time constant. Constant regions let
    /// several *partial* drivers of one net/memory coexist (they converge on
    /// the interpreter as long as they are disjoint); anything else keeps the
    /// single-driver rule.
    fn lvalue_write_regions(
        &self,
        lv: &LValue,
        out: &mut Vec<(SlotRef, Region)>,
    ) -> VlogResult<()> {
        match lv {
            LValue::Ident(name) => out.push((self.slot(name)?, Region::Full)),
            LValue::Index(name, idx) => {
                let slot = self.slot(name)?;
                let region = match self.fold(idx).map(|b| b.to_u64()) {
                    Some(i) => match slot {
                        SlotRef::Mem(_) => Region::MemElem(i),
                        SlotRef::Net(_) => Region::Bits { hi: i, lo: i },
                    },
                    None => Region::Dynamic,
                };
                out.push((slot, region));
            }
            LValue::Slice(name, hi, lo) => {
                let slot = self.slot(name)?;
                let region = match (
                    self.fold(hi).map(|b| b.to_u64()),
                    self.fold(lo).map(|b| b.to_u64()),
                ) {
                    (Some(h), Some(l)) => Region::Bits {
                        hi: h.max(l),
                        lo: h.min(l),
                    },
                    _ => Region::Dynamic,
                };
                out.push((slot, region));
            }
            LValue::Concat(parts) => {
                for p in parts {
                    self.lvalue_write_regions(p, out)?;
                }
            }
        }
        Ok(())
    }

    fn lower_assigns(&mut self) -> VlogResult<LoweredAssigns> {
        struct Raw {
            writes: Vec<(SlotRef, Region)>,
            reads_nets: Vec<u32>,
            reads_mems: Vec<u32>,
            code: Code,
        }
        let mut raw: Vec<Raw> = Vec::with_capacity(self.module.assigns.len());
        for a in &self.module.assigns {
            if !expr_pure(&a.rhs) || !lvalue_pure(&a.lhs) {
                return Err(VlogError::Unsupported(
                    "system calls in continuous assignments are not compilable".into(),
                ));
            }
            let mut code = Code::new();
            self.expr(&a.rhs, &mut code)?;
            self.store_from_stack(&a.lhs, &mut code)?;
            let mut writes = Vec::new();
            self.lvalue_write_regions(&a.lhs, &mut writes)?;
            let mut reads_nets = Vec::new();
            let mut reads_mems = Vec::new();
            let mut read_ids: Vec<&str> = a.rhs.idents();
            lvalue_read_idents(&a.lhs, &mut read_ids);
            for id in read_ids {
                match self.slot(id)? {
                    SlotRef::Net(n) => {
                        if !reads_nets.contains(&n) {
                            reads_nets.push(n);
                        }
                    }
                    SlotRef::Mem(m) => {
                        if !reads_mems.contains(&m) {
                            reads_mems.push(m);
                        }
                    }
                }
            }
            raw.push(Raw {
                writes,
                reads_nets,
                reads_mems,
                code,
            });
        }

        // Multiple drivers of one slot are compilable only when every write
        // region is a constant and the regions are pairwise disjoint: the
        // interpreter's repeated re-evaluation converges for those (each pass
        // imposes the same disjoint bits), while overlapping or whole-value
        // conflicts oscillate — leave them to the interpreter.
        let mut writers: HashMap<SlotRef, Vec<(usize, Region)>> = HashMap::new();
        for (i, node) in raw.iter().enumerate() {
            for &(slot, region) in &node.writes {
                writers.entry(slot).or_default().push((i, region));
            }
        }
        for (slot, entries) in &writers {
            if entries.len() < 2 {
                continue;
            }
            for (a_idx, (_, ra)) in entries.iter().enumerate() {
                for (_, rb) in &entries[a_idx + 1..] {
                    if ra.overlaps(rb) {
                        let name = self.slot_name(*slot);
                        return Err(VlogError::Unsupported(format!(
                            "net '{}' has multiple continuous drivers with \
                             overlapping or non-constant write regions",
                            name
                        )));
                    }
                }
            }
        }

        // Union-find: assigns writing (parts of) the same slot merge into one
        // driver group, executed in source order.
        let n = raw.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for entries in writers.values() {
            for window in entries.windows(2) {
                let a = find(&mut parent, window[0].0);
                let b = find(&mut parent, window[1].0);
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        let mut group_of_root: HashMap<usize, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            let g = *group_of_root.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
        }

        struct Group {
            code: Code,
            reads_nets: Vec<u32>,
            reads_mems: Vec<u32>,
            write_nets: Vec<u32>,
            write_mems: Vec<u32>,
        }
        let mut merged: Vec<Group> = Vec::with_capacity(groups.len());
        for members in &groups {
            let mut g = Group {
                code: Code::new(),
                reads_nets: Vec::new(),
                reads_mems: Vec::new(),
                write_nets: Vec::new(),
                write_mems: Vec::new(),
            };
            for &i in members {
                let node = &raw[i];
                append_rebased(&mut g.code, &node.code);
                for &r in &node.reads_nets {
                    if !g.reads_nets.contains(&r) {
                        g.reads_nets.push(r);
                    }
                }
                for &m in &node.reads_mems {
                    if !g.reads_mems.contains(&m) {
                        g.reads_mems.push(m);
                    }
                }
                for &(slot, _) in &node.writes {
                    match slot {
                        SlotRef::Net(w) => {
                            if !g.write_nets.contains(&w) {
                                g.write_nets.push(w);
                            }
                        }
                        SlotRef::Mem(w) => {
                            if !g.write_mems.contains(&w) {
                                g.write_mems.push(w);
                            }
                        }
                    }
                }
            }
            merged.push(g);
        }

        // Topological levelization over groups (Kahn, smallest index first
        // for determinism). A group that reads another group's written slot
        // must run after it; cycles — including a group reading a slot it
        // writes — fall back to the interpreter.
        let gcount = merged.len();
        let mut net_writer: HashMap<u32, usize> = HashMap::new();
        let mut mem_writer: HashMap<u32, usize> = HashMap::new();
        for (g, group) in merged.iter().enumerate() {
            for &w in &group.write_nets {
                net_writer.insert(w, g);
            }
            for &w in &group.write_mems {
                mem_writer.insert(w, g);
            }
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); gcount];
        let mut indeg = vec![0usize; gcount];
        for (j, group) in merged.iter().enumerate() {
            let mut preds = Vec::new();
            for r in &group.reads_nets {
                if let Some(&i) = net_writer.get(r) {
                    preds.push(i);
                }
            }
            for m in &group.reads_mems {
                if let Some(&i) = mem_writer.get(m) {
                    preds.push(i);
                }
            }
            for i in preds {
                if i == j {
                    return Err(VlogError::Unsupported(
                        "combinational loop in continuous assignments".into(),
                    ));
                }
                succs[i].push(j);
                indeg[j] += 1;
            }
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<usize>> = (0..gcount)
            .filter(|&i| indeg[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(gcount);
        let mut level = vec![1u32; gcount];
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            order.push(i);
            for &j in &succs[i] {
                level[j] = level[j].max(level[i] + 1);
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    heap.push(std::cmp::Reverse(j));
                }
            }
        }
        if order.len() != gcount {
            return Err(VlogError::Unsupported(
                "combinational loop in continuous assignments".into(),
            ));
        }

        let mut comb = Vec::with_capacity(gcount);
        let mut net_deps: Vec<Vec<u32>> = vec![Vec::new(); self.nets.len()];
        let mut mem_deps: Vec<Vec<u32>> = vec![Vec::new(); self.mems.len()];
        let mut net_driver: Vec<Option<u32>> = vec![None; self.nets.len()];
        let mut mem_driver: Vec<Option<u32>> = vec![None; self.mems.len()];
        for (pos, &i) in order.iter().enumerate() {
            let group = &merged[i];
            for &r in &group.reads_nets {
                net_deps[r as usize].push(pos as u32);
            }
            for &m in &group.reads_mems {
                mem_deps[m as usize].push(pos as u32);
            }
            for &w in &group.write_nets {
                net_driver[w as usize] = Some(pos as u32);
            }
            for &w in &group.write_mems {
                mem_driver[w as usize] = Some(pos as u32);
            }
            comb.push(CombNode {
                level: level[i],
                code: group.code.clone(),
            });
        }
        Ok(LoweredAssigns {
            comb,
            net_deps,
            mem_deps,
            net_driver,
            mem_driver,
        })
    }

    /// The flattened name of a slot (for diagnostics).
    fn slot_name(&self, slot: SlotRef) -> String {
        match slot {
            SlotRef::Net(i) => self.nets[i as usize].name.clone(),
            SlotRef::Mem(i) => self.mems[i as usize].name.clone(),
        }
    }

    // ----------------------------------------------------------- procedural

    fn lower_always(&mut self) -> VlogResult<Vec<AlwaysProg>> {
        let mut out = Vec::with_capacity(self.module.always.len());
        for block in &self.module.always {
            let mut guards = Vec::with_capacity(block.events.len());
            for event in &block.events {
                if !expr_pure(&event.expr) {
                    return Err(VlogError::Unsupported(
                        "system calls in sensitivity lists are not compilable".into(),
                    ));
                }
                let mut code = Code::new();
                self.expr(&event.expr, &mut code)?;
                guards.push((event.edge, code));
            }
            let star = if block.events.is_empty() {
                stmt_reads(&block.body)
                    .into_iter()
                    .map(|name| self.slot(&name))
                    .collect::<VlogResult<Vec<_>>>()?
            } else {
                Vec::new()
            };
            let mut body = Code::new();
            self.stmt(&block.body, &mut body)?;
            out.push(AlwaysProg { guards, star, body });
        }
        Ok(out)
    }

    fn lower_initials(&mut self) -> VlogResult<Vec<Code>> {
        let mut out = Vec::with_capacity(self.module.initials.len());
        for stmt in &self.module.initials {
            let mut code = Code::new();
            self.stmt(stmt, &mut code)?;
            out.push(code);
        }
        Ok(out)
    }
}

/// Appends `src` to `dst`, rebasing every intra-program jump target by the
/// current length of `dst` (bytecode jump targets are absolute within their
/// own program, so concatenating driver-group members must shift them).
fn append_rebased(dst: &mut Code, src: &[Op]) {
    let base = dst.len() as u32;
    for op in src {
        dst.push(match op.clone() {
            Op::Jump(t) => Op::Jump(t + base),
            Op::JumpIfZero(t) => Op::JumpIfZero(t + base),
            Op::JumpIfNonZero(t) => Op::JumpIfNonZero(t + base),
            Op::JumpIfNotFinished(t) => Op::JumpIfNotFinished(t + base),
            Op::CheckFinished(t) => Op::CheckFinished(t + base),
            Op::RepeatTest { slot, end } => Op::RepeatTest {
                slot,
                end: end + base,
            },
            Op::Fread { width, skip } => Op::Fread {
                width,
                skip: skip + base,
            },
            other => other,
        });
    }
}

/// Patches the jump at `at` to target the current end of `code`.
fn patch(code: &mut Code, at: usize) {
    let target = code.len() as u32;
    match &mut code[at] {
        Op::Jump(t)
        | Op::JumpIfZero(t)
        | Op::JumpIfNonZero(t)
        | Op::JumpIfNotFinished(t)
        | Op::CheckFinished(t) => *t = target,
        other => unreachable!("patching non-jump op {:?}", other),
    }
}

/// The statically known extent of one continuous-assignment write.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Region {
    /// The whole net.
    Full,
    /// A constant bit range `[hi:lo]` of a net.
    Bits {
        /// High bound (inclusive).
        hi: u64,
        /// Low bound (inclusive).
        lo: u64,
    },
    /// A constant element of a memory.
    MemElem(u64),
    /// A runtime-computed bit, range, or element.
    Dynamic,
}

impl Region {
    /// `true` when two drivers of the same slot could write the same bits —
    /// conservatively including every non-constant region.
    fn overlaps(&self, other: &Region) -> bool {
        match (self, other) {
            (Region::Bits { hi: ah, lo: al }, Region::Bits { hi: bh, lo: bl }) => {
                al <= bh && bl <= ah
            }
            (Region::MemElem(a), Region::MemElem(b)) => a == b,
            _ => true,
        }
    }
}

/// `true` if the lvalue's index/slice expressions contain no system calls.
fn lvalue_pure(lv: &LValue) -> bool {
    match lv {
        LValue::Ident(_) => true,
        LValue::Index(_, i) => expr_pure(i),
        LValue::Slice(_, h, l) => expr_pure(h) && expr_pure(l),
        LValue::Concat(parts) => parts.iter().all(lvalue_pure),
    }
}

/// Identifiers an lvalue *reads* (index and slice-bound expressions).
fn lvalue_read_idents<'e>(lv: &'e LValue, out: &mut Vec<&'e str>) {
    match lv {
        LValue::Ident(_) => {}
        LValue::Index(_, i) => out.extend(i.idents()),
        LValue::Slice(_, h, l) => {
            out.extend(h.idents());
            out.extend(l.idents());
        }
        LValue::Concat(parts) => parts.iter().for_each(|p| lvalue_read_idents(p, out)),
    }
}

/// `true` if the expression contains no system calls (safe for the dirty-bit
/// combinational scheduler and for guard evaluation).
fn expr_pure(e: &Expr) -> bool {
    match e {
        Expr::SystemCall(..) => false,
        Expr::Literal(_) | Expr::StringLit(_) | Expr::Ident(_) => true,
        Expr::Index(a, b) | Expr::Binary(_, a, b) | Expr::Replicate(a, b) => {
            expr_pure(a) && expr_pure(b)
        }
        Expr::Slice(a, b, c) | Expr::Ternary(a, b, c) => {
            expr_pure(a) && expr_pure(b) && expr_pure(c)
        }
        Expr::Unary(_, a) => expr_pure(a),
        Expr::Concat(parts) => parts.iter().all(expr_pure),
    }
}
