//! The compiled netlist IR.
//!
//! A [`CompiledProgram`] is the flattened, pre-resolved form of an
//! `ElabModule`: every variable becomes a numbered slot in a dense value arena
//! (scalars in [`NetDecl`] order, 1-D memories in [`MemDecl`] order), every
//! continuous assignment becomes a levelized [`CombNode`] whose right-hand side
//! is a small bytecode program ending in a store, and every `always`/`initial`
//! body becomes a bytecode program for the register-machine executor
//! (the private `exec` module). Name resolution, width resolution, and the
//! combinational-dependency graph are all computed once at compile time, which
//! is what removes the per-tick AST walking and map lookups that dominate the
//! tree-walking interpreter.

use std::collections::BTreeMap;
use synergy_interp::{apply_binary, TaskEffect};
use synergy_vlog::ast::{BinaryOp, Edge, UnaryOp};
use synergy_vlog::Bits;

/// Procedural loop-iteration cap, mirroring the interpreter's limit.
pub const MAX_LOOP_ITERS: u64 = 10_000_000;

/// A runtime value: widths travel with values, exactly as they do for
/// [`Bits`], but values at most 64 bits wide stay in a machine word.
///
/// Invariant: `Small(v, w)` has `1 <= w <= 64` and `v` masked to `w` bits;
/// any value wider than 64 bits is `Big`. Normalising on that boundary makes
/// derived equality coincide with `Bits` equality.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A value of width `1..=64`, masked to its width.
    Small(u64, u32),
    /// A value wider than 64 bits.
    Big(Bits),
}

#[inline]
pub(crate) fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

impl Val {
    /// Zero of the given width.
    pub fn zero(width: usize) -> Val {
        let width = width.max(1);
        if width <= 64 {
            Val::Small(0, width as u32)
        } else {
            Val::Big(Bits::zero(width))
        }
    }

    /// Normalising conversion from `Bits`.
    pub fn from_bits(b: &Bits) -> Val {
        if b.width() <= 64 {
            Val::Small(b.words()[0], b.width() as u32)
        } else {
            Val::Big(b.clone())
        }
    }

    /// Conversion back to `Bits` (exact).
    pub fn to_bits(&self) -> Bits {
        match self {
            Val::Small(v, w) => Bits::from_u64(*w as usize, *v),
            Val::Big(b) => b.clone(),
        }
    }

    /// The value's width in bits.
    pub fn width(&self) -> u32 {
        match self {
            Val::Small(_, w) => *w,
            Val::Big(b) => b.width() as u32,
        }
    }

    /// The low 64 bits (mirrors `Bits::to_u64`).
    pub fn to_u64(&self) -> u64 {
        match self {
            Val::Small(v, _) => *v,
            Val::Big(b) => b.to_u64(),
        }
    }

    /// Verilog truthiness: any bit set.
    pub fn to_bool(&self) -> bool {
        match self {
            Val::Small(v, _) => *v != 0,
            Val::Big(b) => b.to_bool(),
        }
    }

    /// The bit at `idx` (false out of range).
    pub fn bit(&self, idx: usize) -> bool {
        match self {
            Val::Small(v, w) => idx < *w as usize && (v >> idx) & 1 == 1,
            Val::Big(b) => b.bit(idx),
        }
    }

    /// Truncating / zero-extending resize (mirrors `Bits::resize`).
    pub fn resize(&self, width: usize) -> Val {
        let width = width.max(1);
        match self {
            Val::Small(v, _) if width <= 64 => Val::Small(v & mask(width as u32), width as u32),
            _ => Val::from_bits(&self.to_bits().resize(width)),
        }
    }

    /// Decimal rendering (mirrors `Bits::to_dec_string`).
    pub fn to_dec_string(&self) -> String {
        match self {
            Val::Small(v, _) => format!("{}", v),
            Val::Big(b) => b.to_dec_string(),
        }
    }
}

/// Word-level binary operator on `(value, width)` pairs, the shared scalar
/// core of the stack tier's [`binary`] and the regalloc tier's `BinW`/fused
/// ops. Mirrors [`synergy_interp::apply_binary`] bit-for-bit for operands at
/// most 64 bits wide; returns the result value (masked) and its width.
#[inline]
pub fn word_binary(op: BinaryOp, av: u64, aw: u32, bv: u64, bw: u32) -> (u64, u32) {
    let w = aw.max(bw);
    let m = mask(w);
    match op {
        BinaryOp::Add => (av.wrapping_add(bv) & m, w),
        BinaryOp::Sub => (av.wrapping_sub(bv) & m, w),
        BinaryOp::Mul => (av.wrapping_mul(bv) & m, w),
        BinaryOp::Div => (av.checked_div(bv).unwrap_or(m), w),
        BinaryOp::Rem => (av.checked_rem(bv).unwrap_or(av), w),
        BinaryOp::And => (av & bv, w),
        BinaryOp::Or => (av | bv, w),
        BinaryOp::Xor => (av ^ bv, w),
        BinaryOp::Shl => {
            let n = bv.min(1 << 20);
            (if n >= 64 { 0 } else { (av << n) & mask(aw) }, aw)
        }
        BinaryOp::Shr => {
            let n = bv.min(1 << 20);
            (if n >= 64 { 0 } else { av >> n }, aw)
        }
        BinaryOp::AShr => {
            let n = bv.min(1 << 20);
            let sign = (av >> (aw - 1)) & 1 == 1;
            let mut out = if n >= 64 { 0 } else { av >> n };
            if sign {
                let start = aw.saturating_sub(n as u32);
                out |= mask(aw) & !mask(start);
            }
            (out, aw)
        }
        BinaryOp::LogicalAnd => ((av != 0 && bv != 0) as u64, 1),
        BinaryOp::LogicalOr => ((av != 0 || bv != 0) as u64, 1),
        BinaryOp::Eq => ((av == bv) as u64, 1),
        BinaryOp::Ne => ((av != bv) as u64, 1),
        BinaryOp::Lt => ((av < bv) as u64, 1),
        BinaryOp::Le => ((av <= bv) as u64, 1),
        BinaryOp::Gt => ((av > bv) as u64, 1),
        BinaryOp::Ge => ((av >= bv) as u64, 1),
    }
}

/// Word-level unary operator on a `(value, width)` pair (shared core of
/// [`unary`] and the regalloc tier's `UnW`).
#[inline]
pub fn word_unary(op: UnaryOp, v: u64, w: u32) -> (u64, u32) {
    match op {
        UnaryOp::Not => (!v & mask(w), w),
        UnaryOp::LogicalNot => ((v == 0) as u64, 1),
        UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
        UnaryOp::Plus => (v, w),
        UnaryOp::ReduceAnd => ((v == mask(w)) as u64, 1),
        UnaryOp::ReduceOr => ((v != 0) as u64, 1),
        UnaryOp::ReduceXor => ((v.count_ones() % 2) as u64, 1),
    }
}

/// Applies a binary operator, mirroring [`synergy_interp::apply_binary`]
/// bit-for-bit; the all-small case runs on machine words.
pub fn binary(op: BinaryOp, a: &Val, b: &Val) -> Val {
    if let (Val::Small(av, aw), Val::Small(bv, bw)) = (a, b) {
        let (v, w) = word_binary(op, *av, *aw, *bv, *bw);
        return Val::Small(v, w);
    }
    Val::from_bits(&apply_binary(op, &a.to_bits(), &b.to_bits()))
}

/// Applies a unary operator, mirroring the interpreter's semantics.
pub fn unary(op: UnaryOp, a: &Val) -> Val {
    if let Val::Small(v, w) = a {
        let (v, w) = word_unary(op, *v, *w);
        return Val::Small(v, w);
    }
    let b = a.to_bits();
    let out = match op {
        UnaryOp::Not => b.not(),
        UnaryOp::LogicalNot => Bits::from_bool(!b.to_bool()),
        UnaryOp::Neg => b.neg(),
        UnaryOp::Plus => b,
        UnaryOp::ReduceAnd => Bits::from_bool(b.reduce_and()),
        UnaryOp::ReduceOr => Bits::from_bool(b.reduce_or()),
        UnaryOp::ReduceXor => Bits::from_bool(b.reduce_xor()),
    };
    Val::from_bits(&out)
}

/// Inclusive-range slice `[hi:lo]` (callers pass `hi >= lo`), mirroring
/// `Bits::slice` including reads past the width returning zeros.
pub fn slice(a: &Val, hi: usize, lo: usize) -> Val {
    let w = hi - lo + 1;
    if let Val::Small(v, aw) = a {
        let shifted = if lo >= 64 { 0 } else { v >> lo };
        let _ = aw;
        if w <= 64 {
            return Val::Small(shifted & mask(w as u32), w as u32);
        }
        return Val::Big(Bits::from_u64(w, shifted));
    }
    Val::from_bits(&a.to_bits().slice(hi, lo))
}

/// Concatenation `{a, b}` with `a` in the high bits, mirroring `Bits::concat`.
pub fn concat(a: &Val, b: &Val) -> Val {
    if let (Val::Small(av, aw), Val::Small(bv, bw)) = (a, b) {
        let w = aw + bw;
        if w <= 64 {
            return Val::Small((av << bw) | bv, w);
        }
    }
    Val::from_bits(&a.to_bits().concat(&b.to_bits()))
}

/// A scalar or memory slot reference in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotRef {
    /// Index into the scalar net arena.
    Net(u32),
    /// Index into the memory arena.
    Mem(u32),
}

/// One scalar net in the arena.
#[derive(Debug, Clone)]
pub struct NetDecl {
    /// Flattened variable name.
    pub name: String,
    /// Declared width.
    pub width: u32,
    /// Declared reset value, already resized to `width`.
    pub init: Option<Bits>,
    /// `true` for reg/integer variables (captured by snapshots).
    pub is_register: bool,
    /// `true` for root-module ports (externally observable; the optimizer
    /// must keep them and their drivers alive).
    pub is_port: bool,
}

/// One 1-D memory in the arena.
#[derive(Debug, Clone)]
pub struct MemDecl {
    /// Flattened variable name.
    pub name: String,
    /// Element width.
    pub width: u32,
    /// Number of elements.
    pub depth: u32,
    /// `true` for reg/integer memories (captured by snapshots).
    pub is_register: bool,
}

/// Bytecode for the register-machine executor. Operand stack discipline: each
/// instruction's operands are the topmost stack values, pushed in source
/// evaluation order (so the *last*-evaluated operand is on top).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push constant-pool entry.
    PushConst(u32),
    /// Push a scalar net's current value.
    PushNet(u32),
    /// Push element 0 of a memory (scalar read of a memory name).
    PushMemElem0(u32),
    /// Push the current simulation time as a 64-bit value.
    PushTime,
    /// Push the pending-store value register (non-blocking latch / `$fread`).
    PushValueReg,
    /// Pop an index; push that memory element (zeros out of range).
    MemRead(u32),
    /// Push a memory element at a compile-time-constant index (zeros out of
    /// range). Produced when loop unrolling folds the index expression.
    MemReadConst {
        /// Memory slot.
        mem: u32,
        /// Element index.
        elem: u32,
    },
    /// Pop base then index; push the selected bit.
    BitSelect,
    /// Pop base; push `base[hi:lo]`.
    SliceConst {
        /// High bound (inclusive).
        hi: u32,
        /// Low bound (inclusive).
        lo: u32,
    },
    /// Pop lo, hi, base; push the selected range.
    SliceDyn,
    /// Pop operand; push the result.
    Unary(UnaryOp),
    /// Pop rhs then lhs; push the result.
    Binary(BinaryOp),
    /// Pop rhs then lhs; push `{lhs, rhs}`.
    Concat2,
    /// Pop value then count; push the replication.
    ReplicateDyn,
    /// Pop value; push it resized to the given width.
    Resize(u32),
    /// Pop else-value, then then-value, then condition; push the then-value
    /// when the condition is non-zero, the else-value otherwise. Each arm
    /// keeps its own width. Emitted only by the `synergy-opt` if-conversion
    /// pass (the lowerer always branches); both arms are evaluated, so the
    /// producer must prove them side-effect free and total.
    Select,
    /// Unconditional jump.
    Jump(u32),
    /// Pop condition; jump when it is zero.
    JumpIfZero(u32),
    /// Pop condition; jump when it is non-zero.
    JumpIfNonZero(u32),
    /// Jump when `$finish` has NOT executed (loop back-edges).
    JumpIfNotFinished(u32),
    /// Jump when `$finish` HAS executed (statement entry, mirrors the
    /// interpreter's per-statement early return).
    CheckFinished(u32),
    /// Pop into a temporary register.
    StoreTemp(u32),
    /// Push a temporary register.
    PushTemp(u32),
    /// Pop and discard.
    Pop,
    /// Pop value; store into a scalar net (resized to its width).
    StoreNet(u32),
    /// Pop index then value; store into a memory element.
    StoreMem(u32),
    /// Pop value; store into a memory element at a compile-time-constant
    /// index (writes past the depth are dropped, as in the interpreter).
    StoreMemConst {
        /// Memory slot.
        mem: u32,
        /// Element index.
        elem: u32,
    },
    /// Pop index then value; store bit 0 of the value into net bit `index`.
    StoreBit(u32),
    /// Pop lo, hi, then value; store into the net's `[hi:lo]` range.
    StoreSliceDyn(u32),
    /// Pop value; append `(site, value)` to the non-blocking queue.
    NbSchedule(u32),
    /// Reset a loop-iteration counter.
    LoopInit(u32),
    /// Bump a loop-iteration counter; error past [`MAX_LOOP_ITERS`].
    LoopCheck(u32),
    /// Pop count; initialise a repeat counter (clamped to the cap).
    RepeatInit(u32),
    /// If the repeat counter is zero jump to `end`, else decrement.
    RepeatTest {
        /// Counter slot.
        slot: u32,
        /// Exit target.
        end: u32,
    },
    /// Push the descriptor returned by `env.fopen(strings[idx])`.
    Fopen(u32),
    /// Pop fd; push `env.feof(fd)`.
    Feof,
    /// Push `env.random()` as a 32-bit value.
    Random,
    /// Pop fd; read `width` bits. On EOF jump to `skip`, else latch the value
    /// register and fall through to the store sequence.
    Fread {
        /// Bits to read (the target lvalue's width).
        width: u32,
        /// Jump target when the read returns nothing.
        skip: u32,
    },
    /// Pop fd; close it.
    Fclose,
    /// Append a string-pool entry to the print buffer.
    PrintStr(u32),
    /// Pop value; append its decimal rendering to the print buffer.
    PrintVal,
    /// Flush the print buffer to `env.print`.
    PrintFlush {
        /// Append a newline first (`$display` vs `$write`).
        newline: bool,
    },
    /// Pop exit code; set finished and raise the Finish effect.
    Finish,
    /// Raise a pre-built control-flow effect (`$save`/`$restart`/`$yield`).
    Effect(u32),
}

/// A bytecode program.
pub type Code = Vec<Op>;

/// One levelized combinational node: a *driver group* of one or more
/// continuous assignments that write the same net or memory, concatenated in
/// source order. A group with several members models partial drivers
/// (constant, pairwise-disjoint bit ranges or memory elements); whole-net
/// drivers always form single-member groups.
#[derive(Debug, Clone)]
pub struct CombNode {
    /// Topological level (1 + max level of the drivers it reads).
    pub level: u32,
    /// The concatenated pure rhs+store programs of the group's members.
    pub code: Code,
}

/// One compiled `always` block.
#[derive(Debug, Clone)]
pub struct AlwaysProg {
    /// Edge guards; empty means `always @*`.
    pub guards: Vec<(Edge, Code)>,
    /// Sensitivity slots for `@*` blocks (in the interpreter's read order).
    pub star: Vec<SlotRef>,
    /// The compiled body.
    pub body: Code,
}

/// A fully lowered design, ready to instantiate as a
/// [`crate::CompiledSim`].
///
/// The arenas and tables are public so the `synergy-opt` pass manager can
/// rewrite the program between lowering and execution; every structural
/// invariant a rewrite must preserve (levelization, driver-group tables,
/// snapshot visibility) is documented in `docs/IR.md` at the repository
/// root.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Root module name.
    pub name: String,
    /// Scalar net declarations; `Op::PushNet`/`Op::StoreNet` index here.
    pub nets: Vec<NetDecl>,
    /// Memory declarations; `Op::MemRead`/`Op::StoreMem` index here.
    pub mems: Vec<MemDecl>,
    /// Flattened variable name -> arena slot (the external get/set surface).
    pub slots: BTreeMap<String, SlotRef>,
    /// Constant pool (`Op::PushConst` operands).
    pub consts: Vec<Val>,
    /// String pool (`Op::PrintStr` / `Op::Fopen` operands).
    pub strings: Vec<String>,
    /// Control-flow effect pool (`Op::Effect` operands).
    pub effects: Vec<TaskEffect>,
    /// Combinational nodes in topological order.
    pub comb: Vec<CombNode>,
    /// Net index -> positions (into `comb`) of nodes reading that net.
    pub net_deps: Vec<Vec<u32>>,
    /// Net index -> position of the node driving it, if continuously driven.
    /// A write to such a net must re-wake its driver, which re-imposes the
    /// assigned value exactly as the interpreter's full re-evaluation does.
    pub net_driver: Vec<Option<u32>>,
    /// Memory index -> positions of nodes reading that memory.
    pub mem_deps: Vec<Vec<u32>>,
    /// Memory index -> position of the node driving elements of it, if any
    /// (continuous assignments to memory elements). Like `net_driver`, a
    /// procedural write to such a memory re-wakes the driver.
    pub mem_driver: Vec<Option<u32>>,
    /// Compiled `always` blocks (guards + bodies).
    pub always: Vec<AlwaysProg>,
    /// Compiled `initial` blocks.
    pub initials: Vec<Code>,
    /// Store programs for non-blocking / `$fread` targets; each starts from
    /// the value register.
    pub nb_sites: Vec<Code>,
    /// Source-level target names per `nb_sites` entry, for settle-cap
    /// postmortems ("which always-block site never converged").
    pub nb_site_names: Vec<String>,
    /// Size of the temp-register file shared by all programs.
    pub n_temps: u32,
    /// Size of the loop-counter file (`Op::LoopInit`/`Op::LoopCheck`).
    pub n_loops: u32,
}

impl CompiledProgram {
    /// Number of scalar nets in the value arena.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of memories in the value arena.
    pub fn num_mems(&self) -> usize {
        self.mems.len()
    }

    /// Number of levelized combinational nodes.
    pub fn num_comb_nodes(&self) -> usize {
        self.comb.len()
    }

    /// Depth of the levelized netlist (maximum node level).
    pub fn max_level(&self) -> u32 {
        self.comb.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Number of compiled `always` blocks.
    pub fn num_always(&self) -> usize {
        self.always.len()
    }

    /// Total bytecode instructions across all programs.
    pub fn op_count(&self) -> usize {
        self.comb.iter().map(|n| n.code.len()).sum::<usize>()
            + self
                .always
                .iter()
                .map(|a| a.body.len() + a.guards.iter().map(|(_, c)| c.len()).sum::<usize>())
                .sum::<usize>()
            + self.initials.iter().map(Vec::len).sum::<usize>()
            + self.nb_sites.iter().map(Vec::len).sum::<usize>()
    }

    /// Resolves a variable name to its slot.
    pub fn slot(&self, name: &str) -> Option<SlotRef> {
        self.slots.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(w: u32, v: u64) -> Val {
        Val::Small(v & mask(w), w)
    }

    #[test]
    fn small_binary_matches_bits_semantics() {
        use BinaryOp::*;
        let cases: Vec<(u64, u32, u64, u32)> = vec![
            (250, 8, 10, 8),
            (5, 16, 7, 16),
            (0xffff_ffff, 64, 0xffff_ffff, 64),
            (100, 32, 7, 32),
            (100, 32, 0, 32),
            (0b1001_0001, 8, 4, 3),
            (1, 1, 1, 1),
            (u64::MAX, 64, 3, 2),
            (0x8000_0000, 32, 31, 6),
        ];
        for op in [
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, AShr, LogicalAnd, LogicalOr, Eq, Ne,
            Lt, Le, Gt, Ge,
        ] {
            for &(a, aw, b, bw) in &cases {
                let fast = binary(op, &small(aw, a), &small(bw, b));
                let slow = apply_binary(
                    op,
                    &Bits::from_u64(aw as usize, a),
                    &Bits::from_u64(bw as usize, b),
                );
                assert_eq!(
                    fast,
                    Val::from_bits(&slow),
                    "{:?} on ({a},{aw}) ({b},{bw})",
                    op
                );
            }
        }
    }

    #[test]
    fn small_unary_matches_bits_semantics() {
        use UnaryOp::*;
        for op in [Not, LogicalNot, Neg, Plus, ReduceAnd, ReduceOr, ReduceXor] {
            for &(v, w) in &[(0u64, 1u32), (1, 1), (0xa5, 8), (u64::MAX, 64), (0x7f, 7)] {
                let fast = unary(op, &small(w, v));
                let b = Bits::from_u64(w as usize, v);
                let slow = match op {
                    Not => b.not(),
                    LogicalNot => Bits::from_bool(!b.to_bool()),
                    Neg => b.neg(),
                    Plus => b,
                    ReduceAnd => Bits::from_bool(b.reduce_and()),
                    ReduceOr => Bits::from_bool(b.reduce_or()),
                    ReduceXor => Bits::from_bool(b.reduce_xor()),
                };
                assert_eq!(fast, Val::from_bits(&slow), "{:?} on ({v},{w})", op);
            }
        }
    }

    #[test]
    fn mixed_width_promotes_through_bits() {
        let big = Val::from_bits(&Bits::from_u128(128, 1u128 << 80));
        let small = Val::Small(5, 32);
        let sum = binary(BinaryOp::Add, &big, &small);
        assert_eq!(sum.width(), 128);
        assert_eq!(sum.to_bits().to_u128(), (1u128 << 80) + 5);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let v = small(16, 0xabcd);
        let hi = slice(&v, 15, 8);
        let lo = slice(&v, 7, 0);
        assert_eq!(concat(&hi, &lo), v);
        // Slicing past the width reads zeros, like Bits::slice.
        assert_eq!(slice(&v, 70, 65), Val::zero(6));
    }

    #[test]
    fn normalisation_keeps_equality_consistent() {
        let wide = Bits::from_u64(200, 42).slice(63, 0);
        assert_eq!(Val::from_bits(&wide), Val::Small(42, 64));
    }
}
