//! # synergy-codegen
//!
//! The compiled software engine for the SYNERGY reproduction: a levelized
//! netlist IR plus a bytecode executor that runs the software hot path at
//! near-hardware-model speed while the tree-walking interpreter in
//! `synergy-interp` remains the semantic reference.
//!
//! [`compile`] lowers an elaborated design ([`synergy_vlog::elaborate::ElabModule`])
//! into a [`CompiledProgram`]:
//!
//! * every variable becomes a numbered slot in a dense value arena (no name
//!   lookups on the hot path; values at most 64 bits wide stay in one machine
//!   word),
//! * continuous assignments become combinational nodes levelized by
//!   topological order, re-evaluated through per-net dirty bits so only the
//!   affected cone recomputes when a value changes,
//! * `always`/`initial` bodies (including edge guards, non-blocking
//!   assignment, and the unsynthesizable system tasks) compile to bytecode
//!   executed by the register-machine [`CompiledSim`].
//!
//! # Execution tiers
//!
//! The compiled engine itself is two-tiered:
//!
//! * **Stack tier** ([`Tier::Stack`]) — a bytecode interpreter over an
//!   operand stack of [`Val`]s. Covers the entire compiled envelope and is
//!   the semantic bridge between the tree-walking interpreter and the
//!   register tier.
//! * **Regalloc tier** ([`Tier::RegAlloc`], the default) — the stack
//!   bytecode lowered once more into register-allocated, width-specialized
//!   three-address code. A forward width inference proves which values fit
//!   64 bits; those live untagged in flat `u64` arenas:
//!
//!   - scalar nets at most 64 bits wide live in one `Vec<u64>` (wider nets
//!     keep a `Val` slot at the same index),
//!   - memories whose element width fits a word are flat `Vec<u64>`s,
//!   - expression temporaries are compacted by a linear-scan register
//!     allocator onto a small shared `Vec<u64>` word arena plus a
//!     `Vec<Val>` arena for wide/dynamic-width values.
//!
//!   Hot instruction pairs are fused at translation time (constant operands
//!   into immediate ALU ops, `PushNet;PushConst;BinOp;StoreNet` into two
//!   fused dispatches), and combinational re-evaluation drains a
//!   level-bucketed dirty worklist instead of scanning every node.
//!
//!   **Fallback rules:** any *value* the width inference cannot pin to a
//!   fixed width of at most 64 bits (wider registers, ternary arms of
//!   different widths, dynamic slices/replication) falls back to the exact
//!   stack-tier `Val` routines per op; any *program* the translation cannot
//!   handle at all falls back to the stack tier engine-wide, exactly like
//!   the stack tier falls back to the interpreter. The
//!   `SYNERGY_COMPILED_TIER=stack` environment variable forces the stack
//!   tier (the escape hatch the runtime's `EnginePolicy` plumbing exposes).
//!
//! Both tiers reproduce the interpreter's scheduling semantics tick for
//! tick — same evaluate/update fixpoint, same edge detection, same
//! [`synergy_interp::StateSnapshot`] format — so programs migrate losslessly
//! between the interpreter, either compiled tier, and the hardware engine.
//! Designs using constructs the lowering does not cover (multiply-driven
//! nets, combinational system calls, …) return
//! [`synergy_vlog::VlogError::Unsupported`]; the runtime's engine-selection
//! policy falls back to the interpreter for those.
//!
//! # Example
//!
//! ```
//! use synergy_codegen::{compile, CompiledSim};
//! use synergy_interp::BufferEnv;
//!
//! let design = synergy_vlog::compile(
//!     r#"module Counter(input wire clock, output wire [7:0] out);
//!            reg [7:0] count = 0;
//!            always @(posedge clock) count <= count + 1;
//!            assign out = count;
//!        endmodule"#,
//!     "Counter",
//! )?;
//! let mut sim = CompiledSim::new(compile(&design)?);
//! let mut env = BufferEnv::new();
//! for _ in 0..5 {
//!     sim.tick("clock", &mut env)?;
//! }
//! assert_eq!(sim.get_bits("count")?.to_u64(), 5);
//! # Ok::<(), synergy_vlog::VlogError>(())
//! ```

#![deny(missing_docs)]

mod exec;
pub mod ir;
mod lower;
mod regalloc;
mod wordexec;

pub use exec::{CompiledSim, ExecCounters};
pub use ir::{
    binary, concat, slice, unary, word_binary, word_unary, AlwaysProg, Code, CombNode,
    CompiledProgram, MemDecl, NetDecl, Op, SlotRef, Val, MAX_LOOP_ITERS,
};

use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::VlogResult;

/// Which execution tier a [`CompiledSim`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// Bytecode interpretation over an operand stack of [`Val`]s.
    Stack,
    /// Register-allocated, width-specialized three-address code over flat
    /// `u64` arenas (the default; falls back to [`Tier::Stack`] for
    /// untranslatable programs).
    #[default]
    RegAlloc,
}

impl Tier {
    /// The default tier, honouring the `SYNERGY_COMPILED_TIER` environment
    /// escape hatch (`stack` forces the stack tier; anything else — or the
    /// variable being unset — selects the regalloc tier).
    pub fn from_env() -> Tier {
        match std::env::var("SYNERGY_COMPILED_TIER") {
            Ok(v) if v.eq_ignore_ascii_case("stack") => Tier::Stack,
            _ => Tier::RegAlloc,
        }
    }
}

/// Lowers an elaborated design into the compiled netlist IR.
///
/// # Errors
///
/// Returns [`synergy_vlog::VlogError::Unsupported`] for designs outside the
/// compilable envelope (callers should fall back to the interpreter) and
/// [`synergy_vlog::VlogError::Elaborate`] for malformed designs.
pub fn compile(module: &ElabModule) -> VlogResult<CompiledProgram> {
    lower::lower(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_interp::{BufferEnv, Interpreter, TaskEffect};
    use synergy_vlog::{Bits, VlogError};

    fn compile_src(src: &str, top: &str) -> CompiledProgram {
        compile(&synergy_vlog::compile(src, top).unwrap()).unwrap()
    }

    /// Runs the same design on the interpreter and the compiled engine for
    /// `ticks` clock cycles, asserting bit-identical snapshots and output at
    /// every tick.
    fn assert_lockstep(
        src: &str,
        top: &str,
        clock: &str,
        ticks: usize,
        files: &[(&str, Vec<u64>)],
    ) {
        let design = synergy_vlog::compile(src, top).unwrap();
        let mut interp = Interpreter::new(design.clone());
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        let mut ienv = BufferEnv::new();
        let mut cenv = BufferEnv::new();
        for (path, data) in files {
            ienv.add_file(path.to_string(), data.clone());
            cenv.add_file(path.to_string(), data.clone());
        }
        for t in 0..ticks {
            interp.tick(clock, &mut ienv).unwrap();
            sim.tick(clock, &mut cenv).unwrap();
            assert_eq!(
                interp.save_state(),
                sim.save_state(),
                "snapshots diverge at tick {} for {}",
                t,
                top
            );
            assert_eq!(
                interp.finished(),
                sim.finished(),
                "finish diverges at {}",
                t
            );
        }
        assert_eq!(ienv.output_text(), cenv.output_text());
        assert_eq!(interp.take_effects(), sim.take_effects());
    }

    #[test]
    fn counter_matches_interpreter() {
        assert_lockstep(
            r#"module Counter(input wire clock, output wire [7:0] out);
                   reg [7:0] count = 0;
                   always @(posedge clock) count <= count + 1;
                   assign out = count;
               endmodule"#,
            "Counter",
            "clock",
            300,
            &[],
        );
    }

    #[test]
    fn blocking_vs_nonblocking_matches_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] observed);
                   reg [7:0] a = 0;
                   reg [7:0] b = 0;
                   reg [7:0] seen_mid = 0;
                   always @(posedge clock) begin
                       a = 8'd7;
                       seen_mid = a + b;
                       b <= 8'd3;
                   end
                   assign observed = seen_mid;
               endmodule"#,
            "M",
            "clock",
            5,
            &[],
        );
    }

    #[test]
    fn wide_arithmetic_matches_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [31:0] lo);
                   reg [127:0] acc = 128'd1;
                   reg [63:0] x = 64'hdeadbeefcafebabe;
                   always @(posedge clock) begin
                       acc <= acc * 3 + {x, x[15:0]} - (acc >> 5);
                       x <= (x << 1) ^ (x >> 63);
                   end
                   assign lo = acc[31:0];
               endmodule"#,
            "M",
            "clock",
            64,
            &[],
        );
    }

    #[test]
    fn memories_and_case_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] dout);
                   reg [7:0] mem [0:15];
                   reg [3:0] addr = 0;
                   reg [1:0] state = 0;
                   always @(posedge clock) begin
                       case (state)
                           0: begin mem[addr] <= addr * 3; state <= 1; end
                           1: begin addr <= addr + 1; state <= 2; end
                           default: state <= 0;
                       endcase
                   end
                   assign dout = mem[addr];
               endmodule"#,
            "M",
            "clock",
            100,
            &[],
        );
    }

    #[test]
    fn for_loops_and_bit_writes_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [31:0] total);
                   reg [7:0] mem [0:7];
                   reg [31:0] sum = 0;
                   integer i = 0;
                   reg [3:0] nib = 0;
                   always @(posedge clock) begin
                       sum = 0;
                       for (i = 0; i < 8; i = i + 1) begin
                           mem[i] = i * 5 + sum[3:0];
                           sum = sum + mem[i];
                       end
                       nib[2:1] = sum[1:0];
                       nib[0] = sum[7];
                   end
                   assign total = sum;
               endmodule"#,
            "M",
            "clock",
            20,
            &[],
        );
    }

    #[test]
    fn file_io_and_finish_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock);
                   integer fd = $fopen("data.bin");
                   reg [31:0] r = 0;
                   reg [127:0] sum = 0;
                   always @(posedge clock) begin
                       $fread(fd, r);
                       if ($feof(fd)) begin
                           $display("sum = ", sum);
                           $finish(3);
                       end else
                           sum <= sum + r;
                   end
               endmodule"#,
            "M",
            "clock",
            12,
            &[("data.bin", vec![10, 20, 30, 40, 50])],
        );
    }

    #[test]
    fn always_star_and_negedge_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] biggest);
                   reg [7:0] a = 1;
                   reg [7:0] b = 200;
                   reg [7:0] m = 0;
                   reg [7:0] falls = 0;
                   always @(posedge clock) a <= a + 7;
                   always @(negedge clock) falls <= falls + 1;
                   always @* begin
                       if (a > b) m = a; else m = b;
                   end
                   assign biggest = m;
               endmodule"#,
            "M",
            "clock",
            80,
            &[],
        );
    }

    #[test]
    fn random_and_time_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock);
                   reg [31:0] r = 0;
                   reg [63:0] t = 0;
                   always @(posedge clock) begin
                       r <= r ^ $random;
                       t <= t + $time;
                   end
               endmodule"#,
            "M",
            "clock",
            25,
            &[],
        );
    }

    #[test]
    fn concat_lvalues_and_replication_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock);
                   reg [7:0] hi = 0;
                   reg [7:0] lo = 1;
                   reg [15:0] w = 16'ha55a;
                   always @(posedge clock) begin
                       {hi, lo} = w + {2{lo[3:0]}};
                       w <= {lo, hi};
                   end
               endmodule"#,
            "M",
            "clock",
            40,
            &[],
        );
    }

    #[test]
    fn save_yield_effects_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock);
                   reg [31:0] n = 0;
                   always @(posedge clock) begin
                       $yield;
                       n <= n + 1;
                       if (n == 2) $save("ckpt");
                   end
               endmodule"#,
            "M",
            "clock",
            6,
            &[],
        );
    }

    #[test]
    fn snapshots_cross_restore_between_engines() {
        let src = r#"module Counter(input wire clock, output wire [7:0] out);
                         reg [7:0] count = 0;
                         always @(posedge clock) count <= count + 3;
                         assign out = count;
                     endmodule"#;
        let design = synergy_vlog::compile(src, "Counter").unwrap();
        let mut env = BufferEnv::new();

        // Interpreter state restores into the compiled engine...
        let mut interp = Interpreter::new(design.clone());
        for _ in 0..7 {
            interp.tick("clock", &mut env).unwrap();
        }
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        sim.restore_state(&interp.save_state());
        assert_eq!(sim.get_bits("out").unwrap().to_u64(), 21);
        sim.tick("clock", &mut env).unwrap();

        // ...and back again.
        let mut interp2 = Interpreter::new(design);
        interp2.restore_state(&sim.save_state());
        assert_eq!(interp2.get_bits("count").unwrap().to_u64(), 24);
        assert_eq!(interp2.time(), 8);
    }

    #[test]
    fn unrolled_loops_match_interpreter_with_mid_loop_finish() {
        // $finish fires inside an unrolled loop body: the interpreter runs
        // the step once more and exits, so the induction variable's snapshot
        // value is sensitive to the exact unrolled control flow.
        assert_lockstep(
            r#"module M(input wire clock);
                   reg [31:0] acc = 0;
                   integer i = 0;
                   reg [7:0] rounds = 0;
                   always @(posedge clock) begin
                       for (i = 0; i < 6; i = i + 1) begin
                           acc = acc + i * i;
                           if (acc > 40) $finish(2);
                       end
                       rounds <= rounds + 1;
                   end
               endmodule"#,
            "M",
            "clock",
            8,
            &[],
        );
    }

    #[test]
    fn unrolled_nested_loops_and_wrapping_induction_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] grid [0:24];
                   reg [31:0] sum = 0;
                   integer i = 0;
                   integer j = 0;
                   reg [3:0] w = 0;
                   always @(posedge clock) begin
                       sum = 0;
                       for (i = 1; i < 5; i = i + 1)
                           for (j = 0; j < 5; j = j + 1) begin
                               grid[i * 5 + j] = grid[(i - 1) * 5 + j] + i * j;
                               sum = sum + grid[i * 5 + j];
                           end
                       // 4-bit induction variable wraps 14, 15, 0: the trip
                       // count depends on width-exact step arithmetic.
                       for (w = 14; w >= 14; w = w + 1)
                           sum = sum + w;
                   end
                   assign out = sum;
               endmodule"#,
            "M",
            "clock",
            30,
            &[],
        );
    }

    #[test]
    fn nonblocking_indices_in_unrolled_loops_latch_at_update_time() {
        // `mem[i] <= i` inside an unrolled loop: the interpreter evaluates
        // the rhs per iteration but the index at the *update* step, when i
        // holds its exit value — every scheduled store lands on mem[4].
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] probe);
                   reg [7:0] mem [0:7];
                   integer i = 0;
                   always @(posedge clock) begin
                       for (i = 0; i < 4; i = i + 1)
                           mem[i] <= i + 1;
                   end
                   assign probe = mem[4];
               endmodule"#,
            "M",
            "clock",
            5,
            &[],
        );
    }

    #[test]
    fn fread_into_memory_element_inside_unrolled_loop() {
        assert_lockstep(
            r#"module M(input wire clock);
                   integer fd = $fopen("burst.bin");
                   reg [31:0] buffer [0:7];
                   reg [31:0] total = 0;
                   integer i = 0;
                   always @(posedge clock) begin
                       for (i = 0; i < 4; i = i + 1)
                           $fread(fd, buffer[i]);
                       total = 0;
                       for (i = 0; i < 4; i = i + 1)
                           total = total + buffer[i];
                   end
               endmodule"#,
            "M",
            "clock",
            6,
            &[("burst.bin", (1..=40).collect())],
        );
    }

    #[test]
    fn runtime_bounded_loops_stay_dynamic_and_match() {
        // The bound reads a register the body's enclosing block updates, so
        // the loop cannot unroll; the dynamic bytecode must still agree.
        assert_lockstep(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] n = 1;
                   reg [31:0] acc = 0;
                   integer i = 0;
                   always @(posedge clock) begin
                       for (i = 0; i < n; i = i + 1)
                           acc = acc + i;
                       n <= (n + 1) & 7;
                   end
                   assign out = acc;
               endmodule"#,
            "M",
            "clock",
            40,
            &[],
        );
    }

    #[test]
    fn partial_continuous_drivers_match_interpreter() {
        // Constant-disjoint bit, slice, and concat targets — including two
        // drivers of different regions of the same net — are now inside the
        // compiled envelope.
        assert_lockstep(
            r#"module M(input wire clock, output wire [15:0] bus, output wire [7:0] hi2);
                   reg [7:0] a = 3;
                   reg [7:0] b = 0;
                   wire [15:0] w;
                   wire [7:0] h;
                   wire [7:0] l;
                   // The ternary in the second driver pins the driver-group
                   // jump-rebasing path: merged member bytecode must shift
                   // its branch targets by the preceding members' length.
                   assign w[7:0] = a + b;
                   assign w[15:8] = a[0] ? (a ^ 8'h5a) : (b + 8'd9);
                   assign {h, l} = w + 16'd257;
                   assign bus = w;
                   assign hi2 = h ^ l;
                   always @(posedge clock) begin
                       a <= a + 5;
                       b <= b + 3;
                   end
               endmodule"#,
            "M",
            "clock",
            50,
            &[],
        );
    }

    #[test]
    fn memory_element_continuous_drivers_match_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] out);
                   reg [7:0] x = 1;
                   reg [7:0] mem [0:3];
                   reg [1:0] sel = 0;
                   assign mem[0] = x + 1;
                   assign mem[1] = x * 3;
                   always @(posedge clock) begin
                       // Procedural writes to the driven elements are
                       // re-imposed by the driver, as in the interpreter.
                       mem[0] = 7;
                       mem[2] <= mem[0] + mem[1];
                       x <= x + 1;
                       sel <= sel + 1;
                   end
                   assign out = mem[sel];
               endmodule"#,
            "M",
            "clock",
            40,
            &[],
        );
    }

    #[test]
    fn dynamic_bit_target_single_driver_matches_interpreter() {
        assert_lockstep(
            r#"module M(input wire clock, output wire [7:0] out);
                   reg [2:0] pos = 0;
                   wire [7:0] onehot;
                   assign onehot[pos] = 1;
                   always @(posedge clock) pos <= pos + 3;
                   assign out = onehot;
               endmodule"#,
            "M",
            "clock",
            24,
            &[],
        );
    }

    #[test]
    fn overlapping_partial_drivers_are_rejected() {
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, output wire [7:0] o);
                   reg [7:0] a = 1;
                   assign o[3:0] = a[3:0];
                   assign o[4:2] = a[6:4];
               endmodule"#,
            "M",
        )
        .unwrap();
        assert!(matches!(
            compile(&design),
            Err(VlogError::Unsupported(msg)) if msg.contains("multiple")
        ));

        // A dynamic region next to any other driver is conservatively
        // rejected too (disjointness cannot be proven).
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, input wire [2:0] i, output wire [7:0] o);
                   assign o[i] = 1;
                   assign o[7] = 0;
               endmodule"#,
            "M",
        )
        .unwrap();
        assert!(matches!(compile(&design), Err(VlogError::Unsupported(_))));
    }

    #[test]
    fn bounded_loops_compile_without_loop_counters() {
        // The nw-style dynamic program: every loop has constant bounds, so
        // the lowering must unroll them all — no loop-counter bytecode left.
        let prog = compile_src(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] dp [0:80];
                   reg [31:0] best = 0;
                   integer i = 0;
                   integer j = 0;
                   always @(posedge clock) begin
                       for (i = 1; i < 9; i = i + 1)
                           for (j = 1; j < 9; j = j + 1)
                               dp[i * 9 + j] = dp[(i - 1) * 9 + (j - 1)] + i + j;
                       best = dp[80];
                   end
                   assign out = best;
               endmodule"#,
            "M",
        );
        let has_loop_ops = prog.always.iter().any(|a| {
            a.body
                .iter()
                .any(|op| matches!(op, Op::LoopInit(_) | Op::LoopCheck(_)))
        });
        assert!(!has_loop_ops, "constant-bounded loops should fully unroll");
        let const_mem_ops = prog
            .always
            .iter()
            .flat_map(|a| a.body.iter())
            .filter(|op| matches!(op, Op::MemReadConst { .. } | Op::StoreMemConst { .. }))
            .count();
        assert!(
            const_mem_ops >= 128,
            "unrolled memory indices should fold to constant element ops, got {}",
            const_mem_ops
        );
    }

    #[test]
    fn unsupported_constructs_report_fallback_errors() {
        // Multiple continuous drivers of one net.
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, output wire [7:0] o);
                   wire [7:0] a = 1;
                   assign o = a;
                   assign o = a + 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        assert!(matches!(
            compile(&design),
            Err(VlogError::Unsupported(msg)) if msg.contains("multiple")
        ));

        // System calls in continuous assignments defeat dirty-bit scheduling.
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, output wire [31:0] o);
                   assign o = $random;
               endmodule"#,
            "M",
        )
        .unwrap();
        assert!(matches!(compile(&design), Err(VlogError::Unsupported(_))));
    }

    #[test]
    fn self_triggering_designs_error_identically_on_both_engines() {
        // A zero-delay oscillator: every update round re-triggers the
        // level-sensitive block. Neither engine can settle it; both must
        // reject it with the *same* runtime error (error parity is part of
        // the differential contract — and the cap keeps a hostile tenant
        // from wedging the hypervisor).
        let design = synergy_vlog::compile(
            r#"module M(input wire clock);
                   reg f = 0;
                   always @(posedge clock) f <= 1;
                   always @(f) f <= ~f;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut interp = Interpreter::new(design.clone());
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        let mut env = BufferEnv::new();
        let ierr = interp.tick("clock", &mut env).unwrap_err();
        let cerr = sim.tick("clock", &mut env).unwrap_err();
        assert_eq!(ierr.to_string(), cerr.to_string());
        assert!(ierr.to_string().contains("did not converge"));
    }

    #[test]
    fn combinational_loop_is_rejected() {
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, output wire [7:0] o);
                   wire [7:0] a;
                   wire [7:0] b;
                   assign a = b + 1;
                   assign b = a + 1;
                   assign o = a;
               endmodule"#,
            "M",
        )
        .unwrap();
        assert!(matches!(
            compile(&design),
            Err(VlogError::Unsupported(msg)) if msg.contains("loop")
        ));
    }

    #[test]
    fn ir_is_levelized() {
        let prog = compile_src(
            r#"module M(input wire [7:0] a, output wire [7:0] d);
                   wire [7:0] b = a + 1;
                   wire [7:0] c = b * 2;
                   assign d = c - 1;
               endmodule"#,
            "M",
        );
        assert_eq!(prog.num_comb_nodes(), 3);
        assert_eq!(prog.max_level(), 3);
        assert!(prog.op_count() > 0);
        assert!(prog.slot("d").is_some());
        assert_eq!(prog.num_always(), 0);
        assert!(prog.num_nets() >= 4);
        assert_eq!(prog.num_mems(), 0);
    }

    #[test]
    fn dirty_bits_only_rewake_affected_cones() {
        // Two independent cones; poking one input must not disturb the other.
        let design = synergy_vlog::compile(
            r#"module M(input wire [7:0] a, input wire [7:0] b,
                        output wire [7:0] x, output wire [7:0] y);
                   assign x = a + 1;
                   assign y = b + 1;
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        let mut env = BufferEnv::new();
        sim.settle(&mut env).unwrap();
        sim.set("a", Bits::from_u64(8, 5)).unwrap();
        sim.settle(&mut env).unwrap();
        assert_eq!(sim.get_bits("x").unwrap().to_u64(), 6);
        assert_eq!(sim.get_bits("y").unwrap().to_u64(), 1);
    }

    #[test]
    fn poking_a_driven_net_rewakes_its_driver() {
        // Writing a continuously driven net must not stick: the next
        // propagation re-imposes the assigned value, as in the interpreter.
        let src = r#"module M(input wire [7:0] a, output wire [7:0] o, output wire [7:0] oo);
                         assign o = a + 1;
                         assign oo = o * 2;
                     endmodule"#;
        let design = synergy_vlog::compile(src, "M").unwrap();
        let mut interp = Interpreter::new(design.clone());
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        let mut env = BufferEnv::new();
        for eng in [true, false] {
            if eng {
                interp.settle(&mut env).unwrap();
                interp.set("o", Bits::from_u64(8, 99)).unwrap();
                interp.settle(&mut env).unwrap();
            } else {
                sim.settle(&mut env).unwrap();
                sim.set("o", Bits::from_u64(8, 99)).unwrap();
                sim.settle(&mut env).unwrap();
            }
        }
        assert_eq!(interp.get_bits("o").unwrap(), sim.get_bits("o").unwrap());
        assert_eq!(sim.get_bits("o").unwrap().to_u64(), 1);
        assert_eq!(sim.get_bits("oo").unwrap().to_u64(), 2);
    }

    #[test]
    fn finish_effect_and_exit_code_surface() {
        let design = synergy_vlog::compile(
            r#"module M(input wire clock);
                   reg [7:0] n = 0;
                   always @(posedge clock) begin
                       n <= n + 1;
                       if (n == 3) $finish(7);
                   end
               endmodule"#,
            "M",
        )
        .unwrap();
        let mut sim = CompiledSim::new(compile(&design).unwrap());
        let mut env = BufferEnv::new();
        for _ in 0..10 {
            sim.tick("clock", &mut env).unwrap();
            if sim.finished().is_some() {
                break;
            }
        }
        assert_eq!(sim.finished(), Some(7));
        assert!(sim
            .take_effects()
            .iter()
            .any(|e| matches!(e, TaskEffect::Finish(7))));
    }
}
