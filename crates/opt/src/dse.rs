//! Dead-store elimination: removes a `StoreNet`/`StoreMemConst` whose
//! target is definitely overwritten later in the same basic block with no
//! intervening read or observation point.
//!
//! The scan is backward per block. Observation points that end deadness
//! for *all* slots are the ops that can snapshot or abort the design
//! mid-program: `LoopCheck` (can yield to a checkpoint), `Finish`, and
//! `Effect` (can run `$save`). Partial stores (`StoreBit`,
//! `StoreSliceDyn`) read their target implicitly and therefore count as
//! reads. Non-blocking `NbSchedule` is not a barrier: its latch runs after
//! the block completes and sees final values either way.

use std::collections::HashSet;

use crate::analysis::{blocks, pure_range, splice, stack_effect};
use synergy_codegen::ir::{Code, CompiledProgram, Op};

/// Runs the pass; returns the number of stores removed.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let mut rewrites = 0u64;
    for node in &mut prog.comb {
        rewrites += dse_code(&mut node.code);
    }
    for a in &mut prog.always {
        for (_, g) in &mut a.guards {
            rewrites += dse_code(g);
        }
        rewrites += dse_code(&mut a.body);
    }
    for c in &mut prog.initials {
        rewrites += dse_code(c);
    }
    for c in &mut prog.nb_sites {
        rewrites += dse_code(c);
    }
    if rewrites > 0 {
        let _ = crate::relevel::rebuild_tables(prog);
    }
    rewrites
}

fn dse_code(code: &mut Code) -> u64 {
    let mut rewrites = 0u64;
    loop {
        let mut edits: Vec<(usize, usize, Vec<Op>)> = Vec::new();
        for (bs, be) in blocks(code) {
            analyze_block(code, bs, be, &mut edits);
        }
        if edits.is_empty() {
            return rewrites;
        }
        edits.sort_by_key(|e| std::cmp::Reverse(e.0));
        let mut applied = 0u64;
        for (s, e, repl) in edits {
            if splice(code, s, e, repl) {
                applied += 1;
            }
        }
        rewrites += applied;
        if applied == 0 {
            return rewrites;
        }
    }
}

fn analyze_block(code: &[Op], bs: usize, be: usize, edits: &mut Vec<(usize, usize, Vec<Op>)>) {
    // Forward pass: the start of the pure producing range feeding each op's
    // deepest operand (mirrors the stack simulator in `cse`).
    let mut sim = crate::analysis::StackSim::new();
    let mut full_start: Vec<Option<usize>> = vec![None; be - bs];
    for pc in bs..be {
        let op = &code[pc];
        let (pops, _) = stack_effect(op);
        let n = pops as usize;
        let len = sim.starts.len();
        full_start[pc - bs] = if n == 0 || len < n {
            None
        } else {
            sim.starts[len - n..]
                .iter()
                .try_fold(usize::MAX, |acc, s| s.map(|v| acc.min(v)))
        };
        sim.step(pc, op);
    }

    // Backward pass: a slot is dead at `pc` when it is stored again before
    // any read or observation point.
    let mut dead_nets: HashSet<u32> = HashSet::new();
    let mut dead_elems: HashSet<(u32, u32)> = HashSet::new();
    let mut kept: Vec<(usize, usize)> = Vec::new();
    for pc in (bs..be).rev() {
        match &code[pc] {
            Op::StoreNet(n) => {
                if dead_nets.contains(n) {
                    push_delete(code, pc, full_start[pc - bs], &mut kept, edits);
                }
                dead_nets.insert(*n);
            }
            Op::StoreMemConst { mem, elem } => {
                if dead_elems.contains(&(*mem, *elem)) {
                    push_delete(code, pc, full_start[pc - bs], &mut kept, edits);
                }
                dead_elems.insert((*mem, *elem));
            }
            Op::PushNet(n) => {
                dead_nets.remove(n);
            }
            Op::StoreBit(n) | Op::StoreSliceDyn(n) => {
                dead_nets.remove(n);
            }
            Op::PushMemElem0(m) => {
                dead_elems.remove(&(*m, 0));
            }
            Op::MemReadConst { mem, elem } => {
                dead_elems.remove(&(*mem, *elem));
            }
            Op::MemRead(m) | Op::StoreMem(m) => {
                // Dynamic access: unknown element. A read revives the whole
                // memory; a dynamic store also stops elimination (deleting
                // an earlier const store would change what it overwrites).
                dead_elems.retain(|&(mm, _)| mm != *m);
            }
            Op::LoopCheck(_) | Op::Finish | Op::Effect(_) => {
                dead_nets.clear();
                dead_elems.clear();
            }
            _ => {}
        }
    }
}

/// Queues deletion of the dead store at `pc`: the whole producing range
/// when it is pure, otherwise just the store (replaced by a `Pop`).
fn push_delete(
    code: &[Op],
    pc: usize,
    start: Option<usize>,
    kept: &mut Vec<(usize, usize)>,
    edits: &mut Vec<(usize, usize, Vec<Op>)>,
) {
    let overlaps =
        |kept: &[(usize, usize)], s: usize, e: usize| kept.iter().any(|&(ks, ke)| s < ke && ks < e);
    match start {
        Some(s) if pure_range(code, s, pc) && !overlaps(kept, s, pc + 1) => {
            kept.push((s, pc + 1));
            edits.push((s, pc + 1, Vec::new()));
        }
        _ if !overlaps(kept, pc, pc + 1) => {
            kept.push((pc, pc + 1));
            edits.push((pc, pc + 1, vec![Op::Pop]));
        }
        _ => {}
    }
}
