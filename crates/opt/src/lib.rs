//! # synergy-opt
//!
//! Netlist optimization pipeline for the SYNERGY reproduction: a pass
//! manager over the levelized [`CompiledProgram`] IR, run after lowering
//! and before bytecode execution so both compiled tiers (stack and
//! regalloc) execute the optimized program.
//!
//! # Passes
//!
//! In canonical order (see [`PASS_NAMES`]):
//!
//! | name        | what it does |
//! |-------------|--------------|
//! | `finish`    | rewrites finish-flag checks in `always` bodies without `$finish` into unconditional control flow |
//! | `constprop` | constant/copy propagation across comb driver groups plus local constant folding |
//! | `ifconvert` | converts pure branch diamonds into straight-line [`Select`](synergy_codegen::ir::Op::Select) code |
//! | `nbdirect`  | turns provably unobservable non-blocking latches into direct stores |
//! | `fuse`      | inlines single-reader comb drivers into their reader and deletes the node |
//! | `cse`       | block-local value numbering: expression reuse and redundant-store elimination |
//! | `strength`  | multiply/divide/modulo by powers of two become shifts and masks; identities vanish |
//! | `dse`       | removes stores definitely overwritten before any observation point |
//! | `dce`       | removes comb nodes whose outputs nothing observes |
//! | `relevel`   | recomputes dependency tables and topological levels (always run last) |
//!
//! # Safety net
//!
//! The manager clones the program before each pass and validates the
//! result (stack discipline of every program, plus a full table/level
//! rebuild). A pass that produces an invalid program is **reverted** and
//! reported via [`PassStats::reverted`] — a pass bug degrades to a missed
//! optimization, never a miscompile. Optimization happens at
//! program-construction time only; checkpoint wire formats and engine
//! state snapshots are unaffected because snapshots capture registers
//! and time, which every pass preserves exactly.
//!
//! # Knobs
//!
//! * `SYNERGY_OPT=0` (or `off`/`O0`) disables the pipeline — the [`OptLevel`]
//!   escape hatch.
//! * `SYNERGY_OPT_PASSES=cse,dse` runs only the named passes (unknown names
//!   are ignored; `relevel` is implicitly appended since the table rebuild
//!   is what re-canonicalizes the netlist).
//!
//! # Example
//!
//! ```
//! use synergy_opt::{optimize, OptLevel};
//!
//! let design = synergy_vlog::compile(
//!     r#"module M(input wire clock, output wire [7:0] out);
//!            reg [7:0] count = 0;
//!            wire [7:0] doubled = count * 2;
//!            always @(posedge clock) count <= count + 1;
//!            assign out = doubled + 0;
//!        endmodule"#,
//!     "M",
//! )?;
//! let mut prog = synergy_codegen::compile(&design)?;
//! let before = prog.op_count();
//! let report = optimize(&mut prog);
//! assert!(prog.op_count() <= before);
//! assert!(report.passes.iter().all(|p| !p.reverted));
//! assert_eq!(OptLevel::default(), OptLevel::O1);
//! # Ok::<(), synergy_vlog::VlogError>(())
//! ```

#![deny(missing_docs)]

mod analysis;
mod constprop;
mod cse;
mod dce;
mod dse;
mod finish;
mod fuse;
mod ifconvert;
mod nbdirect;
mod relevel;
mod strength;

use synergy_codegen::CompiledProgram;

/// Canonical pass order. [`optimize_with_passes`] runs the intersection of
/// its argument with this list, in this order.
pub const PASS_NAMES: [&str; 10] = [
    "finish",
    "constprop",
    "ifconvert",
    "nbdirect",
    "fuse",
    "cse",
    "strength",
    "dse",
    "dce",
    "relevel",
];

/// Whether the optimization pipeline runs at all.
///
/// Not part of any checkpoint wire format: programs are optimized when an
/// engine is constructed, and snapshots/migration carry architectural
/// state (registers and time) only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Run the program exactly as lowered.
    O0,
    /// Run the full pass pipeline (the default).
    #[default]
    O1,
}

impl OptLevel {
    /// The default level, honouring the `SYNERGY_OPT` escape hatch: `0`,
    /// `off`, or `o0` (case-insensitive) force [`OptLevel::O0`]; anything
    /// else — or the variable being unset — selects [`OptLevel::O1`].
    ///
    /// ```
    /// std::env::set_var("SYNERGY_OPT", "off");
    /// assert_eq!(synergy_opt::OptLevel::from_env(), synergy_opt::OptLevel::O0);
    /// std::env::remove_var("SYNERGY_OPT");
    /// assert_eq!(synergy_opt::OptLevel::from_env(), synergy_opt::OptLevel::O1);
    /// ```
    pub fn from_env() -> OptLevel {
        match std::env::var("SYNERGY_OPT") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("o0") => {
                OptLevel::O0
            }
            _ => OptLevel::O1,
        }
    }
}

/// What one pass did to the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name, from [`PASS_NAMES`].
    pub name: &'static str,
    /// Number of rewrites the pass performed (pass-specific unit: folds,
    /// converted diamonds, removed stores, deleted nodes, …).
    pub rewrites: u64,
    /// Total bytecode ops in the program before the pass.
    pub ops_before: u64,
    /// Total bytecode ops after the pass (after a revert, equals
    /// `ops_before`).
    pub ops_after: u64,
    /// `true` when post-pass validation failed and the pass was rolled
    /// back. Always worth investigating, never a correctness problem.
    pub reverted: bool,
}

/// The result of running the pipeline over one program.
///
/// ```
/// let design = synergy_vlog::compile(
///     "module M(input wire clock); reg [7:0] c; always @(posedge clock) c <= c + 8'd1; endmodule",
///     "M",
/// )?;
/// let mut prog = synergy_codegen::compile(&design)?;
/// let report = synergy_opt::optimize(&mut prog);
/// // One PassStats entry per pass that ran, in execution order; a clean
/// // run reverts nothing and (here) converts the counter's NB latch.
/// assert!(!report.any_reverted());
/// assert!(report.total_rewrites() > 0);
/// # Ok::<(), synergy_vlog::VlogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Per-pass statistics, in execution order.
    pub passes: Vec<PassStats>,
}

impl OptReport {
    /// Total rewrites across all non-reverted passes.
    pub fn total_rewrites(&self) -> u64 {
        self.passes
            .iter()
            .filter(|p| !p.reverted)
            .map(|p| p.rewrites)
            .sum()
    }

    /// `true` when any pass had to be rolled back.
    pub fn any_reverted(&self) -> bool {
        self.passes.iter().any(|p| p.reverted)
    }
}

/// The pass subset selected by `SYNERGY_OPT_PASSES` (comma-separated pass
/// names), or `None` when the variable is unset or empty. Unknown names
/// are ignored.
pub fn passes_from_env() -> Option<Vec<String>> {
    let v = std::env::var("SYNERGY_OPT_PASSES").ok()?;
    let names: Vec<String> = v
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| PASS_NAMES.contains(&s.as_str()))
        .collect();
    if v.trim().is_empty() {
        None
    } else {
        Some(names)
    }
}

/// Optimizes `prog` in place with the full pipeline, honouring the
/// `SYNERGY_OPT_PASSES` subset selection when set.
///
/// The program's observable behaviour — snapshots at tick boundaries,
/// output, effects, finish codes — is preserved exactly; see the
/// [crate docs](crate) for the validation story.
pub fn optimize(prog: &mut CompiledProgram) -> OptReport {
    match passes_from_env() {
        Some(names) => {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            optimize_with_passes(prog, &refs)
        }
        None => optimize_with_passes(prog, &PASS_NAMES),
    }
}

/// Optimizes `prog` in place, running only the named passes (in canonical
/// order, regardless of the order given). `relevel` always runs last so
/// the dependency tables are canonical for any subset.
///
/// ```
/// let design = synergy_vlog::compile(
///     "module M(input wire a, output wire o); assign o = a & 1'b1; endmodule",
///     "M",
/// )?;
/// let mut prog = synergy_codegen::compile(&design)?;
/// let report = synergy_opt::optimize_with_passes(&mut prog, &["cse", "dse"]);
/// assert_eq!(report.passes.last().unwrap().name, "relevel");
/// # Ok::<(), synergy_vlog::VlogError>(())
/// ```
pub fn optimize_with_passes(prog: &mut CompiledProgram, names: &[&str]) -> OptReport {
    let mut report = OptReport::default();
    for &name in PASS_NAMES.iter() {
        let forced_relevel = name == "relevel";
        if !forced_relevel && !names.contains(&name) {
            continue;
        }
        let ops_before = prog.op_count() as u64;
        let snapshot = prog.clone();
        let result: Result<u64, String> = match name {
            "finish" => Ok(finish::run(prog)),
            "constprop" => Ok(constprop::run(prog)),
            "ifconvert" => Ok(ifconvert::run(prog)),
            "nbdirect" => Ok(nbdirect::run(prog)),
            "fuse" => Ok(fuse::run(prog)),
            "cse" => Ok(cse::run(prog)),
            "strength" => Ok(strength::run(prog)),
            "dse" => Ok(dse::run(prog)),
            "dce" => Ok(dce::run(prog)),
            "relevel" => relevel::run(prog),
            _ => Ok(0),
        };
        let validated = result.and_then(|n| {
            analysis::check_program(prog)?;
            relevel::rebuild_tables(prog)?;
            Ok(n)
        });
        match validated {
            Ok(rewrites) => report.passes.push(PassStats {
                name: PASS_NAMES.iter().find(|&&n| n == name).unwrap(),
                rewrites,
                ops_before,
                ops_after: prog.op_count() as u64,
                reverted: false,
            }),
            Err(_) => {
                *prog = snapshot;
                report.passes.push(PassStats {
                    name: PASS_NAMES.iter().find(|&&n| n == name).unwrap(),
                    rewrites: 0,
                    ops_before,
                    ops_after: ops_before,
                    reverted: true,
                });
            }
        }
    }
    report
}
