//! Strength reduction: rewrites expensive ops with a constant right-hand
//! side into cheaper equivalents, and drops identity operations.
//!
//! * `x * 2^s` → `x << s`, `x / 2^s` → `x >> s` (values are unsigned bit
//!   vectors), `x % 2^s` → `x & (2^s - 1)`;
//! * `x + 0`, `x - 0`, `x | 0`, `x ^ 0`, `x << 0`, `x >> 0` → `x`
//!   (resized when the result width differs);
//! * `x * 0`, `x & 0` → `0` (the left operand is still evaluated and
//!   popped, so side effects are untouched);
//! * `Resize(w)` of a value already `w` bits wide → removed.
//!
//! Every rewrite is validated by computing the replacement's result width
//! with the interpreter's own scalar routines on zero values and requiring
//! it to equal the original result width — a width mismatch would change
//! downstream truncation, so such candidates are skipped rather than
//! risked.

use crate::analysis::{splice, stack_effect};
use synergy_codegen::ir::{self, Code, CompiledProgram, Op, Val};
use synergy_vlog::ast::BinaryOp;

/// Runs the pass; returns the number of rewrites.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let net_w: Vec<u32> = prog.nets.iter().map(|n| n.width).collect();
    let mem_w: Vec<u32> = prog.mems.iter().map(|m| m.width).collect();
    let mut consts = std::mem::take(&mut prog.consts);
    let mut rewrites = 0u64;
    {
        let mut run_code = |code: &mut Code| {
            rewrites += reduce_code(code, &net_w, &mem_w, &mut consts);
        };
        for node in &mut prog.comb {
            run_code(&mut node.code);
        }
        for a in &mut prog.always {
            for (_, g) in &mut a.guards {
                run_code(g);
            }
            run_code(&mut a.body);
        }
        for c in &mut prog.initials {
            run_code(c);
        }
        for c in &mut prog.nb_sites {
            run_code(c);
        }
    }
    prog.consts = consts;
    if rewrites > 0 {
        let _ = crate::relevel::rebuild_tables(prog);
    }
    rewrites
}

/// Widths of the values each op leaves on the stack, walked forward.
/// `None` entries are unknown (block joins reset the whole stack).
fn reduce_code(code: &mut Code, net_w: &[u32], mem_w: &[u32], consts: &mut Vec<Val>) -> u64 {
    let mut rewrites = 0u64;
    'outer: loop {
        let targets: std::collections::HashSet<usize> = code
            .iter()
            .filter_map(|op| crate::analysis::branch_target(op).map(|t| t as usize))
            .collect();
        let mut widths: Vec<Option<u32>> = Vec::new();
        for pc in 0..code.len() {
            if targets.contains(&pc) {
                // Join point: stack contents depend on the path taken.
                widths.clear();
            }
            let op = code[pc].clone();
            if crate::analysis::branch_target(&op).is_some() {
                // Control flow: stack contents at the join are unknown.
                let (pops, pushes) = stack_effect(&op);
                for _ in 0..pops {
                    widths.pop();
                }
                for _ in 0..pushes {
                    widths.push(None);
                }
                widths.clear();
                continue;
            }
            // Candidate rewrites first; they consume the operand widths.
            if let Some((len, repl)) = candidate(code, pc, &widths, consts) {
                if !crate::analysis::has_interior_target(code, pc, pc + len, &[])
                    && splice(code, pc, pc + len, repl)
                {
                    rewrites += 1;
                    continue 'outer;
                }
            }
            step_widths(&op, &mut widths, net_w, mem_w, consts);
        }
        return rewrites;
    }
}

/// Pushes/pops `widths` according to `op`, tracking known result widths.
fn step_widths(
    op: &Op,
    widths: &mut Vec<Option<u32>>,
    net_w: &[u32],
    mem_w: &[u32],
    consts: &[Val],
) {
    let (pops, pushes) = stack_effect(op);
    let mut args: Vec<Option<u32>> = Vec::new();
    for _ in 0..pops {
        args.push(widths.pop().flatten());
    }
    let zero = |w: Option<u32>| w.map(|w| Val::zero(w as usize));
    let out: Option<u32> = match op {
        Op::PushConst(k) => consts.get(*k as usize).map(|v| v.width()),
        Op::PushNet(n) => net_w.get(*n as usize).copied(),
        Op::PushMemElem0(m) | Op::MemRead(m) => mem_w.get(*m as usize).copied(),
        Op::MemReadConst { mem, .. } => mem_w.get(*mem as usize).copied(),
        Op::PushTime => Some(64),
        Op::BitSelect => Some(1),
        Op::SliceConst { hi, lo } => Some(hi - lo + 1),
        Op::Unary(u) => zero(args[0]).map(|a| ir::unary(*u, &a).width()),
        Op::Binary(b) => match (zero(args[1]), zero(args[0])) {
            (Some(a), Some(r)) => Some(ir::binary(*b, &a, &r).width()),
            _ => None,
        },
        Op::Concat2 => match (args[1], args[0]) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        },
        Op::Resize(w) => Some(*w),
        Op::Select => match (args[1], args[2]) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        },
        _ => None,
    };
    for i in 0..pushes {
        widths.push(if i == 0 { out } else { None });
    }
}

/// Checks whether `code[pc..pc+len)` can be strength-reduced given the
/// current stack widths; returns the replacement.
fn candidate(
    code: &[Op],
    pc: usize,
    widths: &[Option<u32>],
    consts: &mut Vec<Val>,
) -> Option<(usize, Vec<Op>)> {
    // Identity resize.
    if let Op::Resize(w) = code[pc] {
        if widths.last().copied().flatten() == Some(w) {
            return Some((1, Vec::new()));
        }
    }
    // [PushConst k, Binary op] with the left operand's width known.
    let (k, bop) = match (code.get(pc), code.get(pc + 1)) {
        (Some(Op::PushConst(k)), Some(Op::Binary(b))) => (*k, *b),
        _ => return None,
    };
    let aw = widths.last().copied().flatten()?;
    let c = consts.get(k as usize)?.clone();
    let a0 = Val::zero(aw as usize);
    let want = ir::binary(bop, &a0, &c).width();
    let shift_of = |c: &Val| -> Option<u32> {
        // `to_u64` truncates wide values; only trust it for narrow consts.
        if c.width() > 64 {
            return None;
        }
        let v = c.to_u64();
        if v != 0 && v.is_power_of_two() {
            Some(v.trailing_zeros())
        } else {
            None
        }
    };
    let cz = !c.to_bool();
    let fits = |repl: Vec<Op>, got: u32| -> Option<(usize, Vec<Op>)> {
        if got == want {
            Some((2, repl))
        } else {
            None
        }
    };
    match bop {
        BinaryOp::Mul => {
            if cz {
                let z = intern(consts, Val::zero(want as usize));
                return Some((2, vec![Op::Pop, Op::PushConst(z)]));
            }
            if c.width() <= 64 && c.to_u64() == 1 {
                return ident(aw, want);
            }
            let s = shift_of(&c)?;
            let sk = intern(consts, Val::Small(s as u64, 32));
            let got = ir::binary(BinaryOp::Shl, &a0, &Val::zero(32)).width();
            fits(vec![Op::PushConst(sk), Op::Binary(BinaryOp::Shl)], got)
        }
        BinaryOp::Div => {
            let s = shift_of(&c)?;
            if s == 0 {
                return ident(aw, want);
            }
            let sk = intern(consts, Val::Small(s as u64, 32));
            let got = ir::binary(BinaryOp::Shr, &a0, &Val::zero(32)).width();
            fits(vec![Op::PushConst(sk), Op::Binary(BinaryOp::Shr)], got)
        }
        BinaryOp::Rem => {
            let s = shift_of(&c)?;
            let mw = c.width().min(64);
            let mask = Val::Small(if s >= 64 { u64::MAX } else { (1u64 << s) - 1 }, mw);
            let got = ir::binary(BinaryOp::And, &a0, &Val::zero(mw as usize)).width();
            let mk = intern(consts, mask);
            fits(vec![Op::PushConst(mk), Op::Binary(BinaryOp::And)], got)
        }
        BinaryOp::And => {
            if cz {
                let z = intern(consts, Val::zero(want as usize));
                return Some((2, vec![Op::Pop, Op::PushConst(z)]));
            }
            None
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Or | BinaryOp::Xor if cz => ident(aw, want),
        BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr if cz => ident(aw, want),
        _ => None,
    }
}

/// Replacement for an identity operation: nothing when the widths already
/// match, a resize otherwise.
fn ident(aw: u32, want: u32) -> Option<(usize, Vec<Op>)> {
    if aw == want {
        Some((2, Vec::new()))
    } else {
        Some((2, vec![Op::Resize(want)]))
    }
}

fn intern(consts: &mut Vec<Val>, v: Val) -> u32 {
    if let Some(i) = consts.iter().position(|c| *c == v) {
        return i as u32;
    }
    consts.push(v);
    (consts.len() - 1) as u32
}
