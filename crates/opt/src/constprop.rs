//! Constant and copy propagation.
//!
//! Netlist phase: a combinational driver group whose entire program is
//! `[PushConst k, StoreNet n]` makes `n` a constant net, and
//! `[PushNet m, StoreNet n]` (same width) makes it a copy. Reads of such
//! nets *in other combinational nodes* are replaced by the constant or the
//! source net. Levelization guarantees a reader at a higher level sees the
//! substituted value in the same settle drain, so the rewrite is exact —
//! including after an external `set()` of the net, which re-wakes its
//! driver and re-imposes the value either way. Procedural programs are
//! deliberately not substituted: before the first settle a net still holds
//! its declared init value, which an `initial` block could observe.
//!
//! Bytecode phase: constant subtrees in every program are folded through
//! the interpreter's own scalar routines ([`ir::binary`] and friends), and
//! branches on constants become unconditional.

use crate::analysis::{has_interior_target, splice};
use crate::relevel;
use synergy_codegen::ir::{self, Code, CompiledProgram, Op, Val};

/// Runs the pass; returns the number of substitutions and folds.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let mut consts = std::mem::take(&mut prog.consts);
    let mut rewrites = netlist_phase(prog, &mut consts);
    for node in &mut prog.comb {
        rewrites += fold_code(&mut node.code, &mut consts);
    }
    let mut always = std::mem::take(&mut prog.always);
    for a in &mut always {
        for (_, g) in &mut a.guards {
            rewrites += fold_code(g, &mut consts);
        }
        rewrites += fold_code(&mut a.body, &mut consts);
    }
    prog.always = always;
    let mut initials = std::mem::take(&mut prog.initials);
    for c in &mut initials {
        rewrites += fold_code(c, &mut consts);
    }
    prog.initials = initials;
    let mut nb = std::mem::take(&mut prog.nb_sites);
    for c in &mut nb {
        rewrites += fold_code(c, &mut consts);
    }
    prog.nb_sites = nb;
    prog.consts = consts;
    if rewrites > 0 {
        let _ = relevel::rebuild_tables(prog);
    }
    rewrites
}

/// Comb-to-comb constant/copy substitution.
fn netlist_phase(prog: &mut CompiledProgram, consts: &mut Vec<Val>) -> u64 {
    #[derive(Clone, Copy)]
    enum Driver {
        Const(u32),
        Copy(u32),
    }
    let mut kind: Vec<Option<Driver>> = vec![None; prog.nets.len()];
    for node in &prog.comb {
        if let [Op::PushConst(k), Op::StoreNet(n)] = node.code[..] {
            // The store resizes to the declared width; intern the resized
            // value so the substituted push has the width a net read has.
            let v = consts[k as usize].resize(prog.nets[n as usize].width as usize);
            kind[n as usize] = Some(Driver::Const(intern(consts, v)));
        } else if let [Op::PushNet(m), Op::StoreNet(n)] = node.code[..] {
            if m != n && prog.nets[m as usize].width == prog.nets[n as usize].width {
                kind[n as usize] = Some(Driver::Copy(m));
            }
        }
    }
    // Chase copy chains (bounded; a levelized netlist has no cycles).
    let resolve = |n: u32| -> Option<Driver> {
        let mut last = kind[n as usize]?;
        for _ in 0..prog.nets.len() {
            match last {
                Driver::Copy(m) => match kind[m as usize] {
                    Some(next) => last = next,
                    None => return Some(Driver::Copy(m)),
                },
                Driver::Const(_) => return Some(last),
            }
        }
        Some(last)
    };
    let mut rewrites = 0u64;
    for node in &mut prog.comb {
        for op in node.code.iter_mut() {
            if let Op::PushNet(n) = *op {
                match resolve(n) {
                    Some(Driver::Const(k)) => {
                        *op = Op::PushConst(k);
                        rewrites += 1;
                    }
                    Some(Driver::Copy(m)) if m != n => {
                        *op = Op::PushNet(m);
                        rewrites += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    rewrites
}

/// Interns `v` in the constant pool, reusing an existing equal entry.
fn intern(consts: &mut Vec<Val>, v: Val) -> u32 {
    if let Some(i) = consts.iter().position(|c| *c == v) {
        return i as u32;
    }
    consts.push(v);
    (consts.len() - 1) as u32
}

/// Local constant folding over one program, iterated to a fixpoint.
fn fold_code(code: &mut Code, consts: &mut Vec<Val>) -> u64 {
    fn cval(code: &Code, consts: &[Val], pc: usize) -> Option<Val> {
        match code.get(pc) {
            Some(Op::PushConst(k)) => consts.get(*k as usize).cloned(),
            _ => None,
        }
    }
    let mut rewrites = 0u64;
    loop {
        let mut changed = false;
        let mut pc = 0usize;
        while pc < code.len() {
            if let Some(a) = cval(code, consts, pc) {
                let folded: Option<(usize, Vec<Op>)> = match code.get(pc + 1) {
                    Some(Op::Unary(u)) => {
                        let v = ir::unary(*u, &a);
                        Some((2, vec![Op::PushConst(intern(consts, v))]))
                    }
                    Some(Op::Resize(w)) => {
                        let v = a.resize(*w as usize);
                        Some((2, vec![Op::PushConst(intern(consts, v))]))
                    }
                    Some(Op::SliceConst { hi, lo }) => {
                        let v = ir::slice(&a, *hi as usize, *lo as usize);
                        Some((2, vec![Op::PushConst(intern(consts, v))]))
                    }
                    Some(Op::JumpIfZero(t)) => {
                        let t = *t;
                        if a.to_bool() {
                            Some((2, Vec::new()))
                        } else {
                            Some((2, vec![Op::Jump(t)]))
                        }
                    }
                    Some(Op::JumpIfNonZero(t)) => {
                        let t = *t;
                        if a.to_bool() {
                            Some((2, vec![Op::Jump(t)]))
                        } else {
                            Some((2, Vec::new()))
                        }
                    }
                    Some(Op::PushConst(_)) => {
                        let b = cval(code, consts, pc + 1).unwrap();
                        match code.get(pc + 2) {
                            Some(Op::Binary(op)) => {
                                let v = ir::binary(*op, &a, &b);
                                Some((3, vec![Op::PushConst(intern(consts, v))]))
                            }
                            Some(Op::Concat2) => {
                                let v = ir::concat(&a, &b);
                                Some((3, vec![Op::PushConst(intern(consts, v))]))
                            }
                            _ => None,
                        }
                    }
                    _ => None,
                };
                if let Some((len, repl)) = folded {
                    if !has_interior_target(code, pc, pc + len, &[])
                        && splice(code, pc, pc + len, repl)
                    {
                        changed = true;
                        rewrites += 1;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        if !changed {
            return rewrites;
        }
    }
}
