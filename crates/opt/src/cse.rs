//! Local value numbering: common-subexpression elimination, net-read
//! forwarding, and redundant-store elimination over basic blocks.
//!
//! Each block is walked forward with an abstract stack of value numbers.
//! A pure producer range whose value is already available — in a net whose
//! current value number matches, in a temp, or as an earlier identical
//! computation (which gets a `StoreTemp`/`PushTemp` tee) — is replaced by
//! a single push. A `StoreNet` whose incoming value number equals the
//! net's current one is deleted (the store layer's compare-equal makes it
//! a no-op either way).
//!
//! Correctness leans on two rules. First, only fully speculable ranges are
//! ever deleted or bypassed, so tees (`StoreTemp`) and other side effects
//! are never removed by a containing rewrite. Second, non-blocking
//! `NbSchedule` ops do **not** touch net state — a net read after an NB
//! assignment still sees the pre-assignment value until the latch at the
//! end of the delta, so merging reads across an NB boundary is exact (and
//! treating the NB store like a blocking one would not be).

use std::collections::HashMap;

use crate::analysis::{blocks, pure_range, splice, stack_effect, StackSim};
use synergy_codegen::ir::{self, Code, CompiledProgram, Op, Val};
use synergy_vlog::ast::{BinaryOp, UnaryOp};

/// Runs the pass; returns the number of rewrites.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let net_w: Vec<u32> = prog.nets.iter().map(|n| n.width).collect();
    let mem_w: Vec<u32> = prog.mems.iter().map(|m| m.width).collect();
    let consts = prog.consts.clone();
    let mut n_temps = prog.n_temps;
    let mut rewrites = 0u64;
    let ctxs = Ctx {
        net_w: &net_w,
        mem_w: &mem_w,
        consts: &consts,
    };
    {
        let mut run_code = |code: &mut Code, in_comb: bool| {
            for _ in 0..10 {
                let n = cse_once(code, in_comb, &ctxs, &mut n_temps);
                rewrites += n;
                if n == 0 {
                    break;
                }
            }
        };
        for node in &mut prog.comb {
            run_code(&mut node.code, true);
        }
        for a in &mut prog.always {
            for (_, g) in &mut a.guards {
                run_code(g, false);
            }
            run_code(&mut a.body, false);
        }
        for c in &mut prog.initials {
            run_code(c, false);
        }
        for c in &mut prog.nb_sites {
            run_code(c, false);
        }
    }
    prog.n_temps = n_temps;
    if rewrites > 0 {
        let _ = crate::relevel::rebuild_tables(prog);
    }
    rewrites
}

struct Ctx<'a> {
    net_w: &'a [u32],
    mem_w: &'a [u32],
    consts: &'a [Val],
}

type VnId = u32;

#[derive(Hash, PartialEq, Eq, Clone)]
enum Key {
    Const(u32),
    UnkNet(u32),
    UnkTemp(u32),
    Entry(u32),
    Opaque(u32),
    Time,
    ValueReg,
    MemDyn(u32, u32, VnId),
    MemElem(u32, u32, u32),
    Un(u8, VnId),
    Bin(u8, VnId, VnId),
    Concat(VnId, VnId),
    Resize(u32, VnId),
    Slice(u32, u32, VnId),
    BitSel(VnId, VnId),
    SliceDyn(VnId, VnId, VnId),
    Select(VnId, VnId, VnId),
    Replicate(VnId, VnId),
}

#[derive(Clone)]
struct Edit {
    start: usize,
    end: usize,
    repl: Vec<Op>,
}

#[derive(Default)]
struct Vn {
    ids: HashMap<Key, VnId>,
    width: Vec<Option<u32>>,
    net_vn: HashMap<u32, VnId>,
    temp_vn: HashMap<u32, VnId>,
    mem_gen: HashMap<u32, u32>,
    mem_elem_vn: HashMap<(u32, u32), VnId>,
    avail_net: HashMap<VnId, u32>,
    avail_temp: HashMap<VnId, u32>,
    first: HashMap<VnId, (usize, usize)>,
    entries: u32,
}

impl Vn {
    fn intern(&mut self, key: Key, width: Option<u32>) -> VnId {
        if let Some(&v) = self.ids.get(&key) {
            return v;
        }
        let v = self.width.len() as VnId;
        self.ids.insert(key, v);
        self.width.push(width);
        v
    }

    fn opaque(&mut self, pc: usize, width: Option<u32>) -> VnId {
        // `Opaque` keys are unique per creation: reuse of the same pc in a
        // later fixpoint iteration starts from a fresh `Vn` anyway.
        self.entries += 1;
        let tag = self.entries;
        self.intern(Key::Opaque(pc as u32 ^ (tag << 20)), width)
    }
}

/// One analyze-and-apply sweep over `code`; returns rewrites applied.
fn cse_once(code: &mut Code, in_comb: bool, ctx: &Ctx, n_temps: &mut u32) -> u64 {
    let mut edits: Vec<Edit> = Vec::new();
    for (bs, be) in blocks(code) {
        analyze_block(code, bs, be, in_comb, ctx, n_temps, &mut edits);
    }
    if edits.is_empty() {
        return 0;
    }
    // Apply bottom-up; for equal starts apply the wider edit first so a tee
    // inserted at a replacement's start lands before the replacement.
    edits.sort_by(|a, b| b.start.cmp(&a.start).then(b.end.cmp(&a.end)));
    let mut applied = 0u64;
    for e in edits {
        if splice(code, e.start, e.end, e.repl) {
            applied += 1;
        }
    }
    applied
}

fn bin_width(op: BinaryOp, aw: Option<u32>, bw: Option<u32>) -> Option<u32> {
    let (aw, bw) = (aw?, bw?);
    Some(ir::binary(op, &Val::zero(aw as usize), &Val::zero(bw as usize)).width())
}

fn un_width(op: UnaryOp, aw: Option<u32>) -> Option<u32> {
    Some(ir::unary(op, &Val::zero(aw? as usize)).width())
}

#[allow(clippy::too_many_arguments)]
fn analyze_block(
    code: &[Op],
    bs: usize,
    be: usize,
    in_comb: bool,
    ctx: &Ctx,
    n_temps: &mut u32,
    edits: &mut Vec<Edit>,
) {
    let mut vn = Vn::default();
    let mut sim = StackSim::new();
    let mut stack: Vec<VnId> = Vec::new();
    let mut stored_here: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut kept: Vec<(usize, usize)> = Vec::new();
    let mut tees: Vec<usize> = Vec::new();

    let overlaps = |kept: &[(usize, usize)], tees: &[usize], s: usize, e: usize| {
        kept.iter().any(|&(ks, ke)| s < ke && ks < e) || tees.iter().any(|&t| t > s && t < e)
    };

    for pc in bs..be {
        let op = &code[pc];
        // Pop value numbers in sync with the stack simulator.
        let (pops, _) = stack_effect(op);
        let mut args: Vec<VnId> = Vec::new();
        for _ in 0..pops {
            args.push(stack.pop().unwrap_or_else(|| {
                vn.entries += 1;
                let e = vn.entries;
                vn.intern(Key::Entry(e), None)
            }));
        }
        // args[0] is the old top of stack.
        let range_start = sim.starts.last().cloned().flatten();
        // The producing range of the value an op with 1+ pops consumes
        // starts at the *deepest* popped slot's producer.
        let full_start = {
            let n = pops as usize;
            let len = sim.starts.len();
            if n == 0 || len < n {
                None
            } else {
                sim.starts[len - n..]
                    .iter()
                    .try_fold(usize::MAX, |acc, s| s.map(|v| acc.min(v)))
            }
        };
        sim.step(pc, op);

        match op {
            Op::PushConst(k) => {
                let w = ctx.consts.get(*k as usize).map(|v| v.width());
                let v = vn.intern(Key::Const(*k), w);
                stack.push(v);
            }
            Op::PushNet(n) => {
                let w = ctx.net_w.get(*n as usize).copied();
                let v = match vn.net_vn.get(n) {
                    Some(&v) => v,
                    None => {
                        let v = vn.intern(Key::UnkNet(*n), w);
                        vn.net_vn.insert(*n, v);
                        vn.avail_net.insert(v, *n);
                        v
                    }
                };
                stack.push(v);
            }
            Op::PushTemp(t) => {
                let v = match vn.temp_vn.get(t) {
                    Some(&v) => v,
                    None => {
                        let v = vn.intern(Key::UnkTemp(*t), None);
                        vn.temp_vn.insert(*t, v);
                        v
                    }
                };
                stack.push(v);
            }
            Op::PushTime => {
                let v = vn.intern(Key::Time, Some(64));
                stack.push(v);
            }
            Op::PushValueReg => {
                let v = vn.intern(Key::ValueReg, None);
                stack.push(v);
            }
            Op::PushMemElem0(m) | Op::MemReadConst { mem: m, elem: _ } => {
                let elem = match op {
                    Op::MemReadConst { elem, .. } => *elem,
                    _ => 0,
                };
                let w = ctx.mem_w.get(*m as usize).copied();
                let v = match vn.mem_elem_vn.get(&(*m, elem)) {
                    Some(&v) => v,
                    None => {
                        let gen = *vn.mem_gen.get(m).unwrap_or(&0);
                        let v = vn.intern(Key::MemElem(*m, elem, gen), w);
                        vn.mem_elem_vn.insert((*m, elem), v);
                        v
                    }
                };
                stack.push(v);
                if let Some(e) = value_reuse(
                    code,
                    pc,
                    full_start,
                    v,
                    &vn,
                    &stored_here,
                    &kept,
                    &tees,
                    edits,
                ) {
                    commit(e, &mut kept, &mut tees, edits);
                }
            }
            Op::MemRead(m) => {
                let gen = *vn.mem_gen.get(m).unwrap_or(&0);
                let w = ctx.mem_w.get(*m as usize).copied();
                let v = vn.intern(Key::MemDyn(*m, gen, args[0]), w);
                stack.push(v);
                reuse_or_tee(
                    code,
                    pc,
                    full_start,
                    v,
                    &mut vn,
                    &stored_here,
                    &mut kept,
                    &mut tees,
                    n_temps,
                    edits,
                );
            }
            Op::BitSelect
            | Op::SliceConst { .. }
            | Op::SliceDyn
            | Op::Unary(_)
            | Op::Binary(_)
            | Op::Concat2
            | Op::Resize(_)
            | Op::Select
            | Op::ReplicateDyn => {
                let v = expr_vn(op, &args, &mut vn);
                stack.push(v);
                if !matches!(op, Op::ReplicateDyn) {
                    reuse_or_tee(
                        code,
                        pc,
                        full_start,
                        v,
                        &mut vn,
                        &stored_here,
                        &mut kept,
                        &mut tees,
                        n_temps,
                        edits,
                    );
                }
            }
            Op::StoreNet(n) => {
                let declw = ctx.net_w[*n as usize];
                let v = args[0];
                let tvn = if vn.width[v as usize] == Some(declw) {
                    v
                } else {
                    vn.intern(Key::Resize(declw, v), Some(declw))
                };
                if vn.net_vn.get(n) == Some(&tvn) {
                    // Redundant store: the net already holds this value.
                    let e = match full_start {
                        Some(s)
                            if pure_range(code, s, pc) && !overlaps(&kept, &tees, s, pc + 1) =>
                        {
                            Edit {
                                start: s,
                                end: pc + 1,
                                repl: Vec::new(),
                            }
                        }
                        _ if !overlaps(&kept, &tees, pc, pc + 1) => Edit {
                            start: pc,
                            end: pc + 1,
                            repl: vec![Op::Pop],
                        },
                        _ => continue,
                    };
                    commit(e, &mut kept, &mut tees, edits);
                } else {
                    vn.net_vn.insert(*n, tvn);
                    vn.avail_net.insert(tvn, *n);
                    stored_here.insert(*n);
                }
            }
            Op::StoreTemp(t) => {
                vn.temp_vn.insert(*t, args[0]);
                vn.avail_temp.insert(args[0], *t);
            }
            Op::StoreBit(n) | Op::StoreSliceDyn(n) => {
                let v = vn.opaque(pc, ctx.net_w.get(*n as usize).copied());
                vn.net_vn.insert(*n, v);
                stored_here.insert(*n);
            }
            Op::StoreMem(m) => {
                *vn.mem_gen.entry(*m).or_insert(0) += 1;
                vn.mem_elem_vn.retain(|&(mm, _), _| mm != *m);
            }
            Op::StoreMemConst { mem, elem } => {
                let declw = ctx.mem_w[*mem as usize];
                let v = args[0];
                let tvn = if vn.width[v as usize] == Some(declw) {
                    v
                } else {
                    vn.intern(Key::Resize(declw, v), Some(declw))
                };
                if vn.mem_elem_vn.get(&(*mem, *elem)) == Some(&tvn) {
                    if let Some(s) = full_start {
                        if pure_range(code, s, pc) && !overlaps(&kept, &tees, s, pc + 1) {
                            commit(
                                Edit {
                                    start: s,
                                    end: pc + 1,
                                    repl: Vec::new(),
                                },
                                &mut kept,
                                &mut tees,
                                edits,
                            );
                            continue;
                        }
                    }
                    if !overlaps(&kept, &tees, pc, pc + 1) {
                        commit(
                            Edit {
                                start: pc,
                                end: pc + 1,
                                repl: vec![Op::Pop],
                            },
                            &mut kept,
                            &mut tees,
                            edits,
                        );
                    }
                } else {
                    *vn.mem_gen.entry(*mem).or_insert(0) += 1;
                    vn.mem_elem_vn.insert((*mem, *elem), tvn);
                }
            }
            // Everything else: effects on the environment or control flow
            // only. Value-producing ones push opaque numbers.
            other => {
                let (_, pushes) = stack_effect(other);
                for _ in 0..pushes {
                    let v = vn.opaque(pc, None);
                    stack.push(v);
                }
            }
        }

        // Record the first pure producing range of each value number.
        if let (Some(s), Some(&v)) = (sim.starts.last().cloned().flatten(), stack.last()) {
            let end = pc + 1;
            if end > s && pure_range(code, s, end) {
                vn.first.entry(v).or_insert((s, end));
            }
        }
        let _ = range_start;
    }

    // Unused-binding silencer for contexts without stores.
    let _ = in_comb;
}

/// Value numbers for pure expression ops over already-numbered operands.
/// `args` holds popped operands top-first (`args[0]` was the top of stack).
fn expr_vn(op: &Op, args: &[VnId], vn: &mut Vn) -> VnId {
    let w = |vn: &Vn, v: VnId| vn.width[v as usize];
    match op {
        Op::Unary(u) => {
            let a = args[0];
            let width = un_width(*u, w(vn, a));
            vn.intern(Key::Un(*u as u8, a), width)
        }
        Op::Binary(b) => {
            let (rhs, lhs) = (args[0], args[1]);
            let width = bin_width(*b, w(vn, lhs), w(vn, rhs));
            vn.intern(Key::Bin(*b as u8, lhs, rhs), width)
        }
        Op::Concat2 => {
            let (rhs, lhs) = (args[0], args[1]);
            let width = match (w(vn, lhs), w(vn, rhs)) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            vn.intern(Key::Concat(lhs, rhs), width)
        }
        Op::Resize(to) => {
            let a = args[0];
            if w(vn, a) == Some(*to) {
                a
            } else {
                vn.intern(Key::Resize(*to, a), Some(*to))
            }
        }
        Op::SliceConst { hi, lo } => {
            let a = args[0];
            vn.intern(Key::Slice(*hi, *lo, a), Some(hi - lo + 1))
        }
        Op::BitSelect => {
            let (idx, base) = (args[0], args[1]);
            vn.intern(Key::BitSel(base, idx), Some(1))
        }
        Op::SliceDyn => {
            let (lo, hi, base) = (args[0], args[1], args[2]);
            vn.intern(Key::SliceDyn(base, hi, lo), None)
        }
        Op::Select => {
            let (b, a, c) = (args[0], args[1], args[2]);
            if a == b {
                return a;
            }
            let width = match (w(vn, a), w(vn, b)) {
                (Some(x), Some(y)) if x == y => Some(x),
                _ => None,
            };
            vn.intern(Key::Select(c, a, b), width)
        }
        Op::ReplicateDyn => {
            let (v, n) = (args[0], args[1]);
            vn.intern(Key::Replicate(n, v), None)
        }
        _ => unreachable!("expr_vn called on non-expression op"),
    }
}

/// Tries to replace the pure producing range ending at `pc` with a read of
/// an existing location holding the same value.
#[allow(clippy::too_many_arguments)]
fn value_reuse(
    code: &[Op],
    pc: usize,
    full_start: Option<usize>,
    v: VnId,
    vn: &Vn,
    stored_here: &std::collections::HashSet<u32>,
    kept: &[(usize, usize)],
    tees: &[usize],
    _edits: &[Edit],
) -> Option<Edit> {
    let s = full_start?;
    let end = pc + 1;
    if end - s < 2 || !pure_range(code, s, end) {
        return None;
    }
    if kept.iter().any(|&(ks, ke)| s < ke && ks < end) || tees.iter().any(|&t| t > s && t < end) {
        return None;
    }
    if let Some(&n) = vn.avail_net.get(&v) {
        if vn.net_vn.get(&n) == Some(&v) && !stored_here.contains(&n) {
            return Some(Edit {
                start: s,
                end,
                repl: vec![Op::PushNet(n)],
            });
        }
    }
    if let Some(&t) = vn.avail_temp.get(&v) {
        if vn.temp_vn.get(&t) == Some(&v) {
            return Some(Edit {
                start: s,
                end,
                repl: vec![Op::PushTemp(t)],
            });
        }
    }
    None
}

fn commit(e: Edit, kept: &mut Vec<(usize, usize)>, tees: &mut Vec<usize>, edits: &mut Vec<Edit>) {
    if e.start == e.end {
        tees.push(e.start);
    } else {
        kept.push((e.start, e.end));
    }
    edits.push(e);
}

/// [`value_reuse`], falling back to creating a tee at the first identical
/// computation when no location already holds the value.
#[allow(clippy::too_many_arguments)]
fn reuse_or_tee(
    code: &[Op],
    pc: usize,
    full_start: Option<usize>,
    v: VnId,
    vn: &mut Vn,
    stored_here: &std::collections::HashSet<u32>,
    kept: &mut Vec<(usize, usize)>,
    tees: &mut Vec<usize>,
    n_temps: &mut u32,
    edits: &mut Vec<Edit>,
) {
    if let Some(e) = value_reuse(code, pc, full_start, v, vn, stored_here, kept, tees, edits) {
        commit(e, kept, tees, edits);
        return;
    }
    // Tee: first identical computation exists earlier in the block.
    let Some(&(fs, fe)) = vn.first.get(&v) else {
        return;
    };
    let Some(s) = full_start else { return };
    let end = pc + 1;
    if fe > s || end - s < 2 || !pure_range(code, s, end) {
        return;
    }
    if kept.iter().any(|&(ks, ke)| s < ke && ks < end)
        || tees.iter().any(|&t| t > s && t < end)
        || kept.iter().any(|&(ks, ke)| fe > ks && fe < ke)
    {
        return;
    }
    let _ = fs;
    let t = *n_temps;
    *n_temps += 1;
    commit(
        Edit {
            start: fe,
            end: fe,
            repl: vec![Op::StoreTemp(t), Op::PushTemp(t)],
        },
        kept,
        tees,
        edits,
    );
    commit(
        Edit {
            start: s,
            end,
            repl: vec![Op::PushTemp(t)],
        },
        kept,
        tees,
        edits,
    );
    vn.temp_vn.insert(t, v);
    vn.avail_temp.insert(v, t);
}
