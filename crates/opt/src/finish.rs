//! Finish-check elision: `always` bodies that contain no `$finish` can
//! never observe the finished flag mid-body (the engines stop launching
//! bodies once a design finishes, so in-body checks only fire after an
//! in-body `Finish`). For such bodies every `CheckFinished` is a no-op and
//! every `JumpIfNotFinished` is an unconditional jump. The regalloc tier
//! already performs this elision during translation; rewriting the stored
//! bytecode extends it to the stack tier and, more importantly, removes
//! the spurious control-flow edges that block if-conversion.

use crate::analysis::splice;
use synergy_codegen::ir::{CompiledProgram, Op};

/// Runs the pass; returns the number of ops elided or rewritten.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let mut rewrites = 0u64;
    for a in &mut prog.always {
        if a.body.iter().any(|op| matches!(op, Op::Finish)) {
            continue;
        }
        for op in a.body.iter_mut() {
            if let Op::JumpIfNotFinished(t) = op {
                *op = Op::Jump(*t);
                rewrites += 1;
            }
        }
        while let Some(pc) = a
            .body
            .iter()
            .position(|op| matches!(op, Op::CheckFinished(_)))
        {
            if !splice(&mut a.body, pc, pc + 1, Vec::new()) {
                break;
            }
            rewrites += 1;
        }
    }
    rewrites
}
