//! Non-blocking-to-direct-store conversion: rewrites `Op::NbSchedule`
//! into an immediate [`Op::StoreNet`] when the latch delay is provably
//! unobservable. Converted registers skip the per-tick latch machinery
//! (value boxing, pending-queue traffic) and — once a design has no live
//! schedules left in a settle — the engine converges in one
//! evaluate/update round instead of two, which is most of the fixed
//! per-tick overhead on small designs.
//!
//! A register `r` converts only when every observer already sees the
//! post-latch value under both schedules:
//!
//! * every write to `r` is an `NbSchedule` of the plain site shape
//!   `[PushValueReg, StoreNet(r)]`, and every one of those schedules
//!   sits in a single always body (the *owner*) — RMW sites
//!   (bit/slice latches), guard/comb/initial schedules, and mixed
//!   blocking writes all disqualify;
//! * the owner never reads `r` at or after its first schedule, and no
//!   backward branch crosses a schedule (a loop iteration would read
//!   the pre-latch value under NB but the stored one after conversion);
//! * no other always block reads `r` or any net in its combinational
//!   cone (body, guard, or `@*` sensitivity), and no guard anywhere
//!   depends on the cone — so nothing can fire, or fire earlier,
//!   because the store landed mid-evaluate;
//! * procedural code never writes into the cone (single-driver comb
//!   only);
//! * if the owner itself reads `r` (before the first schedule) or reads
//!   cone nets, the owner must be statically single-fire per settle:
//!   every guard is a plain-net edge on an externally driven net (a
//!   clock input), which toggles at most once per settle. A multi-fire
//!   owner would otherwise see the stored value on its second pass where
//!   NB semantics still show the old one.
//!
//! Under those conditions the only in-settle observer of `r` is its own
//! comb cone, and the cone is re-propagated before anything reads it in
//! both schedules, so `StateSnapshot`s, `$display` output, and effects
//! stay bit-identical (enforced by the differential corpus and the
//! pass-subset property tests).

use crate::analysis::branch_target;
use crate::relevel::slot_use;
use std::collections::BTreeSet;
use synergy_codegen::ir::{CompiledProgram, Op};
use synergy_vlog::ast::Edge;

/// Runs the pass; returns the number of schedules converted.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    // Plain latch sites: `[PushValueReg, StoreNet(n)]` → n.
    let simple_site: Vec<Option<u32>> = prog
        .nb_sites
        .iter()
        .map(|code| match code.as_slice() {
            [Op::PushValueReg, Op::StoreNet(n)] => Some(*n),
            _ => None,
        })
        .collect();

    // Where each site is scheduled from: always bodies by index, or
    // anywhere else (guards, comb, initials, other sites) which
    // disqualifies the target net outright.
    let mut site_owner: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); prog.nb_sites.len()];
    let mut site_escapes: Vec<bool> = vec![false; prog.nb_sites.len()];
    let scan_sched = |code: &[Op],
                      owner: Option<usize>,
                      site_owner: &mut Vec<BTreeSet<usize>>,
                      site_escapes: &mut Vec<bool>| {
        for op in code {
            if let Op::NbSchedule(s) = op {
                match owner {
                    Some(b) => {
                        site_owner[*s as usize].insert(b);
                    }
                    None => site_escapes[*s as usize] = true,
                }
            }
        }
    };
    for (b, a) in prog.always.iter().enumerate() {
        scan_sched(&a.body, Some(b), &mut site_owner, &mut site_escapes);
        for (_, g) in &a.guards {
            scan_sched(g, None, &mut site_owner, &mut site_escapes);
        }
    }
    for node in &prog.comb {
        scan_sched(&node.code, None, &mut site_owner, &mut site_escapes);
    }
    for code in &prog.initials {
        scan_sched(code, None, &mut site_owner, &mut site_escapes);
    }
    for code in &prog.nb_sites {
        scan_sched(code, None, &mut site_owner, &mut site_escapes);
    }

    // Nets written procedurally anywhere (bodies, initials, site latch
    // programs): used both to find competing writers and to prove a
    // guard net is externally driven.
    let mut proc_writes: Vec<BTreeSet<u32>> = Vec::new(); // per always body
    let mut other_writes: BTreeSet<u32> = BTreeSet::new(); // initials + sites
    for a in &prog.always {
        proc_writes.push(slot_use(&a.body).write_nets);
    }
    for code in &prog.initials {
        other_writes.extend(slot_use(code).write_nets);
    }
    for (s, code) in prog.nb_sites.iter().enumerate() {
        let w = slot_use(code).write_nets;
        // A site only writes when something schedules it.
        if !site_owner[s].is_empty() || site_escapes[s] {
            other_writes.extend(w);
        }
    }

    let mut rewrites = 0u64;
    let candidates: Vec<u32> = (0..prog.nets.len() as u32)
        .filter(|&n| prog.nets[n as usize].is_register)
        .collect();
    for n in candidates {
        if let Some(owner) = conversion_owner(
            prog,
            n,
            &simple_site,
            &site_owner,
            &site_escapes,
            &proc_writes,
            &other_writes,
        ) {
            let body = &mut prog.always[owner].body;
            for op in body.iter_mut() {
                if let Op::NbSchedule(s) = op {
                    if simple_site[*s as usize] == Some(n) {
                        *op = Op::StoreNet(n);
                        rewrites += 1;
                    }
                }
            }
        }
    }
    if rewrites > 0 {
        let _ = crate::relevel::rebuild_tables(prog);
    }
    rewrites
}

/// Checks every legality condition for net `n`; returns the owning
/// always-block index if `n` is convertible.
#[allow(clippy::too_many_arguments)]
fn conversion_owner(
    prog: &CompiledProgram,
    n: u32,
    simple_site: &[Option<u32>],
    site_owner: &[BTreeSet<usize>],
    site_escapes: &[bool],
    proc_writes: &[BTreeSet<u32>],
    other_writes: &BTreeSet<u32>,
) -> Option<usize> {
    // All sites targeting n must be plain latches scheduled from exactly
    // one body.
    let mut owner: Option<usize> = None;
    let mut n_sites: Vec<u32> = Vec::new();
    for (s, code) in prog.nb_sites.iter().enumerate() {
        if !slot_use(code).write_nets.contains(&n) {
            continue;
        }
        if simple_site[s] != Some(n) || site_escapes[s] {
            return None;
        }
        if site_owner[s].is_empty() {
            continue; // never scheduled; inert
        }
        if site_owner[s].len() > 1 {
            return None;
        }
        let b = *site_owner[s].iter().next().unwrap();
        if *owner.get_or_insert(b) != b {
            return None;
        }
        n_sites.push(s as u32);
    }
    let owner = owner?;

    // No blocking writes to n anywhere (bodies write via slot_use;
    // initial stores are fine — they run once, before any body, under
    // both schedules — so only always bodies are checked here).
    if proc_writes.iter().any(|w| w.contains(&n)) {
        return None;
    }

    // Owner-body positional checks.
    let body = &prog.always[owner].body;
    let mut site_pcs: Vec<usize> = Vec::new();
    for (pc, op) in body.iter().enumerate() {
        if let Op::NbSchedule(s) = op {
            if simple_site[*s as usize] == Some(n) {
                site_pcs.push(pc);
            }
        }
    }
    let first_site = *site_pcs.first()?;
    // No read of n at or after the first schedule.
    let mut owner_reads_n = false;
    for (pc, op) in body.iter().enumerate() {
        if let Op::PushNet(r) = op {
            if *r == n {
                if pc >= first_site {
                    return None;
                }
                owner_reads_n = true;
            }
        }
    }
    // No backward branch crossing a schedule.
    for (pc, op) in body.iter().enumerate() {
        if let Some(t) = branch_target(op) {
            let t = t as usize;
            if t <= pc && site_pcs.iter().any(|&s| t <= s && s <= pc) {
                return None;
            }
        }
    }

    // Combinational cone of n.
    let mut cone: BTreeSet<u32> = BTreeSet::new();
    cone.insert(n);
    loop {
        let before = cone.len();
        for node in &prog.comb {
            let u = slot_use(&node.code);
            if u.reads_nets.iter().any(|r| cone.contains(r)) {
                cone.extend(u.write_nets);
            }
        }
        if cone.len() == before {
            break;
        }
    }
    let strict_cone: BTreeSet<u32> = cone.iter().copied().filter(|&c| c != n).collect();

    // Procedural code must not write into the cone (beyond n itself).
    if strict_cone.iter().any(|c| other_writes.contains(c))
        || proc_writes
            .iter()
            .any(|w| w.iter().any(|c| strict_cone.contains(c)))
    {
        return None;
    }

    // Nothing outside the owner may observe n or its cone, and no guard
    // anywhere (owner included) may depend on it.
    let mut owner_reads_cone = false;
    for (b, a) in prog.always.iter().enumerate() {
        for (_, g) in &a.guards {
            if slot_use(g).reads_nets.iter().any(|r| cone.contains(r)) {
                return None;
            }
        }
        for s in &a.star {
            if let synergy_codegen::SlotRef::Net(r) = s {
                if cone.contains(r) {
                    return None;
                }
            }
        }
        let body_reads = slot_use(&a.body).reads_nets;
        if b == owner {
            owner_reads_cone = body_reads.iter().any(|r| strict_cone.contains(r));
        } else if body_reads.iter().any(|r| cone.contains(r)) {
            return None;
        }
    }
    // Latch programs of other registers must not read the cone either
    // (they run between evaluate rounds).
    for code in &prog.nb_sites {
        if slot_use(code).reads_nets.iter().any(|r| cone.contains(r)) {
            return None;
        }
    }
    // Initials: conservative — they run once before any body, but keep
    // the rule simple and bail on any cone read.
    for code in &prog.initials {
        if slot_use(code).reads_nets.iter().any(|r| cone.contains(r)) {
            return None;
        }
    }

    // If the owner observes n (pre-schedule) or its cone, it must be
    // provably single-fire per settle: plain-net edge guards on nets no
    // procedural or combinational driver ever writes.
    if owner_reads_n || owner_reads_cone {
        let a = &prog.always[owner];
        if a.guards.is_empty() {
            return None; // `@*` owner can refire mid-settle
        }
        for (edge, g) in &a.guards {
            if *edge == Edge::Any {
                return None;
            }
            let [Op::PushNet(gn)] = g.as_slice() else {
                return None;
            };
            let externally_driven = prog.net_driver[*gn as usize].is_none()
                && !other_writes.contains(gn)
                && !proc_writes.iter().any(|w| w.contains(gn));
            if !externally_driven {
                return None;
            }
        }
    }
    Some(owner)
}
