//! If-conversion: rewrites branch diamonds whose arms are pure, total, and
//! cheap into straight-line code ending in [`Op::Select`]. Straight-line
//! blocks dispatch with no branch misprediction, need no block-boundary
//! register reconciliation on the regalloc tier, and open the door for
//! local value numbering and dead-store elimination across the former
//! join points.
//!
//! Recognized shapes (`cond` is already on the stack):
//!
//! * expression diamond — both arms push exactly one value;
//! * store diamond — both arms compute one value and end in the same
//!   store (`StoreNet`, `StoreMemConst`, or `NbSchedule` of sites with
//!   identical store programs);
//! * one-arm store — `if (c) n = e;` becomes `n = c ? e : n`, which the
//!   store layer turns into a compare-equal no-op on the untaken side.
//!
//! Both arms execute after conversion, so every arm op must satisfy
//! [`is_speculable`]: pure, total (division by zero and out-of-range
//! reads have defined results), and allocation-bounded (`ReplicateDyn` is
//! excluded). Conversion runs bottom-up to a fixpoint so nested diamonds
//! collapse from the inside out.
//!
//! Conversion is additionally *profitability-gated*: an arm longer than
//! [`max_spec_ops`] ops stays a branch, because forcing a large arm onto
//! the formerly-untaken path increases the dynamically executed op count
//! (the interpreter's branch costs one dispatch, not a pipeline flush).
//! `SYNERGY_OPT_IFCONVERT_MAX` overrides the ceiling for experiments.

use crate::analysis::{has_interior_target, is_speculable, splice, stack_effect};
use synergy_codegen::ir::{Code, CompiledProgram, Op};

/// Profitability ceiling: the largest arm (in ops) a conversion may force
/// onto the formerly-untaken path. Branches on an interpreter are cheap
/// (~one dispatch), so executing a big arm unconditionally is a dynamic
/// pessimization even though the static op count shrinks; tiny arms win
/// because the select replaces two branch dispatches and unlocks CSE/DSE
/// across the former join point.
fn max_spec_ops() -> usize {
    match std::env::var("SYNERGY_OPT_IFCONVERT_MAX") {
        Ok(v) => v.parse().unwrap_or(6),
        Err(_) => 6,
    }
}

/// Runs the pass; returns the number of diamonds converted.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let nb_sites = prog.nb_sites.clone();
    let limit = max_spec_ops();
    let mut rewrites = 0u64;
    for node in &mut prog.comb {
        rewrites += convert_code(&mut node.code, &nb_sites, limit);
    }
    let mut always = std::mem::take(&mut prog.always);
    for a in &mut always {
        for (_, g) in &mut a.guards {
            rewrites += convert_code(g, &nb_sites, limit);
        }
        rewrites += convert_code(&mut a.body, &nb_sites, limit);
    }
    prog.always = always;
    let mut initials = std::mem::take(&mut prog.initials);
    for c in &mut initials {
        rewrites += convert_code(c, &nb_sites, limit);
    }
    prog.initials = initials;
    let mut nb = std::mem::take(&mut prog.nb_sites);
    for c in &mut nb {
        rewrites += convert_code(c, &nb_sites, limit);
    }
    prog.nb_sites = nb;
    if rewrites > 0 {
        let _ = crate::relevel::rebuild_tables(prog);
    }
    rewrites
}

/// What a validated arm computes.
enum Arm {
    /// Pure ops pushing exactly one value.
    Expr,
    /// Pure producer followed by a final store op.
    Store(Op),
}

/// Validates `code[s..e)` as a diamond arm: every op speculable except an
/// optional final store, stack never dips below entry, and the net effect
/// matches the arm kind.
fn classify_arm(code: &[Op], s: usize, e: usize) -> Option<Arm> {
    if s >= e {
        return None;
    }
    let mut depth: i64 = 0;
    for (i, op) in code[s..e].iter().enumerate() {
        let last = i == e - s - 1;
        if !is_speculable(op) {
            if !last {
                return None;
            }
            // A store arm: producer must have left exactly one value.
            if !matches!(
                op,
                Op::StoreNet(_) | Op::StoreMemConst { .. } | Op::NbSchedule(_)
            ) || depth != 1
            {
                return None;
            }
            return Some(Arm::Store(op.clone()));
        }
        let (pops, pushes) = stack_effect(op);
        depth -= pops as i64;
        if depth < 0 {
            return None;
        }
        depth += pushes as i64;
    }
    if depth == 1 {
        Some(Arm::Expr)
    } else {
        None
    }
}

/// The matching stores for a two-arm diamond, merged into one: both arms
/// must store to the same place. Two `NbSchedule` sites merge when their
/// store programs are identical (the lowerer allocates one site per
/// syntactic assignment, so `if/else` onto the same target yields two
/// sites with equal code).
fn merge_store(a: &Op, b: &Op, nb_sites: &[Code]) -> Option<Op> {
    match (a, b) {
        (Op::StoreNet(x), Op::StoreNet(y)) if x == y => Some(a.clone()),
        (Op::StoreMemConst { mem: m1, elem: e1 }, Op::StoreMemConst { mem: m2, elem: e2 })
            if m1 == m2 && e1 == e2 =>
        {
            Some(a.clone())
        }
        (Op::NbSchedule(s1), Op::NbSchedule(s2))
            if s1 == s2 || nb_sites[*s1 as usize] == nb_sites[*s2 as usize] =>
        {
            Some(Op::NbSchedule(*s1))
        }
        _ => None,
    }
}

/// The "unchanged" value push for a one-arm store: reading the store
/// target back, so the untaken side stores the current value (which the
/// compare-equal store layer treats as a no-op).
fn reread(store: &Op) -> Option<Op> {
    match store {
        Op::StoreNet(n) => Some(Op::PushNet(*n)),
        Op::StoreMemConst { mem, elem } => Some(Op::MemReadConst {
            mem: *mem,
            elem: *elem,
        }),
        // No way to express "leave the pending store queue alone".
        _ => None,
    }
}

fn convert_code(code: &mut Code, nb_sites: &[Code], limit: usize) -> u64 {
    let mut rewrites = 0u64;
    'outer: loop {
        for j in 0..code.len() {
            let (t, jump_on_zero) = match code[j] {
                Op::JumpIfZero(t) => (t as usize, true),
                Op::JumpIfNonZero(t) => (t as usize, false),
                _ => continue,
            };
            if t <= j + 1 || t > code.len() {
                continue;
            }
            // Two-arm: `[j] cbranch t; [j+1..t-1) arm1; [t-1] Jump t_end;
            // [t..t_end) arm2`.
            if let Some(Op::Jump(te)) = code.get(t - 1) {
                let te = *te as usize;
                if te >= t && te <= code.len() {
                    if let (Some(a1), Some(a2)) =
                        (classify_arm(code, j + 1, t - 1), classify_arm(code, t, te))
                    {
                        // Each arm lands on the other's untaken path.
                        if (t - 1) - (j + 1) > limit || te - t > limit {
                            continue;
                        }
                        // arm1 runs when the branch does NOT jump.
                        let (nz, z) = if jump_on_zero {
                            ((j + 1, t - 1), (t, te))
                        } else {
                            ((t, te), (j + 1, t - 1))
                        };
                        let store = match (&a1, &a2) {
                            (Arm::Expr, Arm::Expr) => None,
                            (Arm::Store(s1), Arm::Store(s2)) => {
                                match merge_store(s1, s2, nb_sites) {
                                    Some(s) => Some(s),
                                    None => continue,
                                }
                            }
                            _ => continue,
                        };
                        if has_interior_target(code, j, te, &[j, t - 1]) {
                            continue;
                        }
                        let strip = |r: (usize, usize)| -> &[Op] {
                            let end = match store {
                                Some(_) => r.1 - 1,
                                None => r.1,
                            };
                            &code[r.0..end]
                        };
                        let mut repl: Vec<Op> = Vec::new();
                        repl.extend_from_slice(strip(nz));
                        repl.extend_from_slice(strip(z));
                        repl.push(Op::Select);
                        if let Some(s) = &store {
                            repl.push(s.clone());
                        }
                        if splice(code, j, te, repl) {
                            rewrites += 1;
                            continue 'outer;
                        }
                    }
                }
            }
            // One-arm: `[j] cbranch t; [j+1..t) arm`.
            if t - (j + 1) > limit {
                continue;
            }
            if let Some(Arm::Store(s)) = classify_arm(code, j + 1, t) {
                let Some(push_old) = reread(&s) else { continue };
                if has_interior_target(code, j, t, &[j]) {
                    continue;
                }
                let arm = &code[j + 1..t - 1];
                let mut repl: Vec<Op> = Vec::new();
                if jump_on_zero {
                    // Arm runs when cond != 0: arm value is the "then".
                    repl.extend_from_slice(arm);
                    repl.push(push_old);
                } else {
                    // Arm runs when cond == 0: current value is the "then".
                    repl.push(push_old);
                    repl.extend_from_slice(arm);
                }
                repl.push(Op::Select);
                repl.push(s);
                if splice(code, j, t, repl) {
                    rewrites += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    rewrites
}
