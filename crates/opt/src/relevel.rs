//! Re-levelization: recomputes the driver-group tables (`net_deps`,
//! `net_driver`, `mem_deps`, `mem_driver`) and topological levels from the
//! combinational node code, after structural passes have rewritten it.
//!
//! Nodes stay in their existing order — the lowerer emits them in a valid
//! topological order and every pass only *removes* dependencies, so the
//! order remains topological. A forward sweep therefore suffices for
//! levels; if a node ever reads a slot whose driver comes later (which no
//! pass should produce), rebuilding fails and the pass manager reverts.

use std::collections::BTreeSet;
use synergy_codegen::ir::{CompiledProgram, Op};

/// Nets and memories one code buffer reads and writes. Reads are value
/// reads only (`PushNet` / memory loads): partial-store targets
/// (`StoreBit`, `StoreSliceDyn`) count as writes, matching the lowerer.
pub(crate) struct SlotUse {
    pub reads_nets: BTreeSet<u32>,
    pub reads_mems: BTreeSet<u32>,
    pub write_nets: BTreeSet<u32>,
    pub write_mems: BTreeSet<u32>,
}

/// Scans `code` for the slots it touches.
pub(crate) fn slot_use(code: &[Op]) -> SlotUse {
    let mut u = SlotUse {
        reads_nets: BTreeSet::new(),
        reads_mems: BTreeSet::new(),
        write_nets: BTreeSet::new(),
        write_mems: BTreeSet::new(),
    };
    for op in code {
        match op {
            Op::PushNet(n) => {
                u.reads_nets.insert(*n);
            }
            Op::PushMemElem0(m) | Op::MemRead(m) => {
                u.reads_mems.insert(*m);
            }
            Op::MemReadConst { mem, .. } => {
                u.reads_mems.insert(*mem);
            }
            Op::StoreNet(n) | Op::StoreBit(n) | Op::StoreSliceDyn(n) => {
                u.write_nets.insert(*n);
            }
            Op::StoreMem(m) => {
                u.write_mems.insert(*m);
            }
            Op::StoreMemConst { mem, .. } => {
                u.write_mems.insert(*mem);
            }
            _ => {}
        }
    }
    u
}

/// Rebuilds the dependency tables and levels in place. Returns the number
/// of nodes whose level changed, or an error if the node order is no
/// longer topological (the caller reverts the offending pass).
pub(crate) fn rebuild_tables(prog: &mut CompiledProgram) -> Result<u64, String> {
    let uses: Vec<SlotUse> = prog.comb.iter().map(|n| slot_use(&n.code)).collect();

    let mut net_deps: Vec<Vec<u32>> = vec![Vec::new(); prog.nets.len()];
    let mut mem_deps: Vec<Vec<u32>> = vec![Vec::new(); prog.mems.len()];
    let mut net_driver: Vec<Option<u32>> = vec![None; prog.nets.len()];
    let mut mem_driver: Vec<Option<u32>> = vec![None; prog.mems.len()];
    for (pos, u) in uses.iter().enumerate() {
        for &r in &u.reads_nets {
            net_deps[r as usize].push(pos as u32);
        }
        for &m in &u.reads_mems {
            mem_deps[m as usize].push(pos as u32);
        }
        for &w in &u.write_nets {
            net_driver[w as usize] = Some(pos as u32);
        }
        for &w in &u.write_mems {
            mem_driver[w as usize] = Some(pos as u32);
        }
    }

    let mut changed = 0u64;
    let mut levels: Vec<u32> = Vec::with_capacity(prog.comb.len());
    for (pos, u) in uses.iter().enumerate() {
        let mut level = 1u32;
        let mut dep = |driver: Option<u32>| -> Result<(), String> {
            if let Some(d) = driver {
                if d as usize >= pos {
                    return Err(format!(
                        "comb node {} reads a slot driven by node {} (not topological)",
                        pos, d
                    ));
                }
                level = level.max(levels[d as usize] + 1);
            }
            Ok(())
        };
        for &r in &u.reads_nets {
            if u.write_nets.contains(&r) {
                return Err(format!("comb node {} reads its own driven net {}", pos, r));
            }
            dep(net_driver[r as usize])?;
        }
        for &m in &u.reads_mems {
            if u.write_mems.contains(&m) {
                return Err(format!(
                    "comb node {} reads its own driven memory {}",
                    pos, m
                ));
            }
            dep(mem_driver[m as usize])?;
        }
        levels.push(level);
    }
    for (node, &level) in prog.comb.iter_mut().zip(&levels) {
        if node.level != level {
            node.level = level;
            changed += 1;
        }
    }
    prog.net_deps = net_deps;
    prog.mem_deps = mem_deps;
    prog.net_driver = net_driver;
    prog.mem_driver = mem_driver;
    Ok(changed)
}

/// The `relevel` pass: canonicalizes tables and levels. Run last so any
/// structural drift from earlier passes is squared away even when those
/// passes are individually disabled.
pub(crate) fn run(prog: &mut CompiledProgram) -> Result<u64, String> {
    rebuild_tables(prog)
}
