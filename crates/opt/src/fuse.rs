//! Comb-node fusion: inlines a combinational driver whose program is a
//! pure expression into its sole reader, then deletes the driver node.
//!
//! A fused net stops being computed each settle — external `get()` on it
//! reads its init value. That is only legal for anonymous plumbing between
//! comb nodes, so fusion requires the net to be neither a register nor a
//! port, never read procedurally (bodies, guards, `@*` lists, initials,
//! nb-site programs), and driven by a node that writes nothing else. The
//! inlined producer reads only nets driven by earlier nodes, so node order
//! stays topological and re-levelization succeeds.

use std::collections::BTreeSet;

use crate::analysis::{pure_range, splice};
use crate::relevel::{rebuild_tables, slot_use};
use synergy_codegen::ir::{CompiledProgram, Op, SlotRef};

/// Duplication budget: inlining into a reader with `k` reads copies the
/// producer `k - 1` extra times; skip when that exceeds this many ops.
const DUP_BUDGET: usize = 16;

/// Runs the pass; returns the number of nodes fused away.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let mut rewrites = 0u64;
    let max = prog.comb.len() + 1;
    for _ in 0..max {
        if fuse_one(prog) {
            rewrites += 1;
        } else {
            break;
        }
    }
    if rewrites > 0 {
        let _ = rebuild_tables(prog);
    }
    rewrites
}

/// Nets read anywhere outside the comb netlist.
fn procedural_reads(prog: &CompiledProgram) -> BTreeSet<u32> {
    let mut nets = BTreeSet::new();
    fn scan(code: &[Op], nets: &mut BTreeSet<u32>) {
        for op in code {
            if let Op::PushNet(n) = op {
                nets.insert(*n);
            }
        }
    }
    for a in &prog.always {
        for (_, g) in &a.guards {
            scan(g, &mut nets);
        }
        scan(&a.body, &mut nets);
        for s in &a.star {
            if let SlotRef::Net(n) = s {
                nets.insert(*n);
            }
        }
    }
    for c in &prog.initials {
        scan(c, &mut nets);
    }
    for c in &prog.nb_sites {
        scan(c, &mut nets);
    }
    nets
}

fn fuse_one(prog: &mut CompiledProgram) -> bool {
    let proc_reads = procedural_reads(prog);
    for n in 0..prog.nets.len() {
        let decl = &prog.nets[n];
        if decl.is_register || decl.is_port || proc_reads.contains(&(n as u32)) {
            continue;
        }
        let Some(driver) = prog.net_driver[n] else {
            continue;
        };
        let readers = &prog.net_deps[n];
        if readers.len() != 1 {
            continue;
        }
        let j = readers[0] as usize;
        let node = &prog.comb[driver as usize];
        let Some(Op::StoreNet(sn)) = node.code.last() else {
            continue;
        };
        if *sn as usize != n {
            continue;
        }
        let plen = node.code.len() - 1;
        if !pure_range(&node.code, 0, plen) {
            continue;
        }
        let u = slot_use(&node.code);
        if u.write_nets.len() != 1 || !u.write_mems.is_empty() {
            continue;
        }
        let k = prog.comb[j]
            .code
            .iter()
            .filter(|op| matches!(op, Op::PushNet(m) if *m as usize == n))
            .count();
        if k == 0 || (k - 1) * plen > DUP_BUDGET {
            continue;
        }
        // Inline every read, then delete the producer node. The store
        // clamped the produced value to the net's declared width (truncating
        // or zero-extending) and the read returned that width — an explicit
        // slice reproduces both, since slicing past the value's width reads
        // zeros. Without it a reader sees the producer's natural width,
        // which changes subtraction borrow, reductions, and comparisons.
        let width = prog.nets[n].width;
        let mut producer: Vec<Op> = node.code[..plen].to_vec();
        if producer.last()
            != Some(&Op::SliceConst {
                hi: width - 1,
                lo: 0,
            })
        {
            producer.push(Op::SliceConst {
                hi: width - 1,
                lo: 0,
            });
        }
        loop {
            let code = &mut prog.comb[j].code;
            let Some(p) = code
                .iter()
                .position(|op| matches!(op, Op::PushNet(m) if *m as usize == n))
            else {
                break;
            };
            if !splice(code, p, p + 1, producer.clone()) {
                return false;
            }
        }
        prog.comb.remove(driver as usize);
        // Node indices shifted; recompute tables before the next candidate.
        // A failure here is squared away by the pass manager's validation.
        let _ = rebuild_tables(prog);
        return true;
    }
    false
}
