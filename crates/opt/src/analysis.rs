//! Shared bytecode analyses for the optimization passes: stack-effect
//! tables, speculation legality, branch-target bookkeeping, basic-block
//! discovery, producer-range tracking, and the splice editor that keeps
//! branch targets consistent across structural rewrites.

use synergy_codegen::ir::{Code, CompiledProgram, Op};

/// `(pops, pushes)` for one bytecode instruction. Every [`Op`] has a fixed
/// stack effect.
pub(crate) fn stack_effect(op: &Op) -> (u32, u32) {
    match op {
        Op::PushConst(_)
        | Op::PushNet(_)
        | Op::PushMemElem0(_)
        | Op::PushTime
        | Op::PushValueReg
        | Op::MemReadConst { .. }
        | Op::PushTemp(_)
        | Op::Fopen(_)
        | Op::Random => (0, 1),
        Op::MemRead(_) | Op::SliceConst { .. } | Op::Unary(_) | Op::Resize(_) | Op::Feof => (1, 1),
        Op::BitSelect | Op::Binary(_) | Op::Concat2 | Op::ReplicateDyn => (2, 1),
        Op::SliceDyn => (3, 1),
        Op::Select => (3, 1),
        Op::Jump(_)
        | Op::JumpIfNotFinished(_)
        | Op::CheckFinished(_)
        | Op::LoopInit(_)
        | Op::LoopCheck(_)
        | Op::RepeatTest { .. }
        | Op::PrintStr(_)
        | Op::PrintFlush { .. }
        | Op::Effect(_) => (0, 0),
        Op::JumpIfZero(_)
        | Op::JumpIfNonZero(_)
        | Op::StoreTemp(_)
        | Op::Pop
        | Op::StoreNet(_)
        | Op::StoreMemConst { .. }
        | Op::NbSchedule(_)
        | Op::RepeatInit(_)
        | Op::Fread { .. }
        | Op::Fclose
        | Op::PrintVal
        | Op::Finish => (1, 0),
        Op::StoreMem(_) | Op::StoreBit(_) => (2, 0),
        Op::StoreSliceDyn(_) => (3, 0),
    }
}

/// `true` when `op` is pure, total, and cheap enough to evaluate
/// speculatively (both arms of an if-conversion run unconditionally, and a
/// deleted producer range must have had no side effects).
///
/// Notable exclusions: `ReplicateDyn` allocates an unbounded result from a
/// runtime count; `Random` advances RNG state; `StoreTemp` writes the shared
/// temp file; `Feof`/file ops touch the host environment.
pub(crate) fn is_speculable(op: &Op) -> bool {
    matches!(
        op,
        Op::PushConst(_)
            | Op::PushNet(_)
            | Op::PushMemElem0(_)
            | Op::PushTime
            | Op::PushValueReg
            | Op::PushTemp(_)
            | Op::MemRead(_)
            | Op::MemReadConst { .. }
            | Op::BitSelect
            | Op::SliceConst { .. }
            | Op::SliceDyn
            | Op::Unary(_)
            | Op::Binary(_)
            | Op::Concat2
            | Op::Resize(_)
            | Op::Select
    )
}

/// The branch target of `op`, if it has one.
pub(crate) fn branch_target(op: &Op) -> Option<u32> {
    match op {
        Op::Jump(t)
        | Op::JumpIfZero(t)
        | Op::JumpIfNonZero(t)
        | Op::JumpIfNotFinished(t)
        | Op::CheckFinished(t)
        | Op::RepeatTest { end: t, .. }
        | Op::Fread { skip: t, .. } => Some(*t),
        _ => None,
    }
}

fn target_mut(op: &mut Op) -> Option<&mut u32> {
    match op {
        Op::Jump(t)
        | Op::JumpIfZero(t)
        | Op::JumpIfNonZero(t)
        | Op::JumpIfNotFinished(t)
        | Op::CheckFinished(t)
        | Op::RepeatTest { end: t, .. }
        | Op::Fread { skip: t, .. } => Some(t),
        _ => None,
    }
}

/// `true` when some branch anywhere in `code`, other than the ops at the
/// pcs listed in `exempt`, targets a pc strictly inside `(start, end)`.
/// Rewrites that collapse a region must refuse in that case — an external
/// entry into the interior would land mid-replacement.
pub(crate) fn has_interior_target(code: &[Op], start: usize, end: usize, exempt: &[usize]) -> bool {
    code.iter().enumerate().any(|(pc, op)| {
        !exempt.contains(&pc)
            && branch_target(op)
                .map(|t| (t as usize) > start && (t as usize) < end)
                .unwrap_or(false)
    })
}

/// Replaces `code[start..end)` with `repl`, shifting every branch target
/// past the region by the length delta. Targets at or before `start` and at
/// or after `end` are preserved (the replacement must be a stack-and-effect
/// drop-in for the region, so landing at `start` stays correct). Returns
/// `false` without modifying `code` if any branch targets the interior.
pub(crate) fn splice(code: &mut Code, start: usize, end: usize, repl: Vec<Op>) -> bool {
    if has_interior_target(code, start, end, &[]) {
        // Jumps inside the removed region itself may target the interior;
        // re-check exempting them.
        let interior: Vec<usize> = (start..end).collect();
        if has_interior_target(code, start, end, &interior) {
            return false;
        }
    }
    let delta = repl.len() as i64 - (end - start) as i64;
    code.splice(start..end, repl);
    for op in code.iter_mut() {
        if let Some(t) = target_mut(op) {
            if *t as usize >= end {
                *t = (*t as i64 + delta) as u32;
            }
        }
    }
    true
}

/// `true` when `op` ends a basic block (it branches, may branch, or may
/// abort the program mid-flight).
pub(crate) fn is_block_end(op: &Op) -> bool {
    branch_target(op).is_some() || matches!(op, Op::Finish | Op::Effect(_) | Op::LoopCheck(_))
}

/// Basic-block boundaries of `code`: every `(start, end)` half-open range
/// of straight-line ops. `Finish`/`Effect`/`LoopCheck` end blocks too (they
/// can abort or re-enter the program, which the block-local passes treat as
/// an observation barrier).
pub(crate) fn blocks(code: &[Op]) -> Vec<(usize, usize)> {
    let mut leaders = std::collections::BTreeSet::new();
    leaders.insert(0);
    for (pc, op) in code.iter().enumerate() {
        if let Some(t) = branch_target(op) {
            leaders.insert(t as usize);
        }
        if is_block_end(op) {
            leaders.insert(pc + 1);
        }
    }
    leaders.insert(code.len());
    let ls: Vec<usize> = leaders.into_iter().collect();
    ls.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Forward stack simulation over a straight-line range, tracking for each
/// live stack slot the pc where its producing instruction range starts.
/// `None` marks a slot whose producer is outside the range (or crosses an
/// impure instruction), which the passes treat as non-deletable.
pub(crate) struct StackSim {
    /// Producer-range start per live slot, bottom to top.
    pub starts: Vec<Option<usize>>,
}

impl StackSim {
    pub(crate) fn new() -> Self {
        StackSim { starts: Vec::new() }
    }

    /// Advances over `op` at `pc`, merging popped producer ranges into the
    /// pushed slot (if any).
    pub(crate) fn step(&mut self, pc: usize, op: &Op) {
        let (pops, pushes) = stack_effect(op);
        let mut start = Some(pc);
        for _ in 0..pops {
            match self.starts.pop() {
                Some(Some(s)) => start = start.map(|cur| cur.min(s)),
                _ => start = None,
            }
        }
        for _ in 0..pushes {
            self.starts.push(start);
        }
    }
}

/// `true` when every instruction in `code[start..end)` is speculable — the
/// whole range can be deleted or duplicated without observable effects.
pub(crate) fn pure_range(code: &[Op], start: usize, end: usize) -> bool {
    code[start..end].iter().all(is_speculable)
}

/// Expected final stack depth of a program, by role.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProgKind {
    /// Guard expressions leave their value on the stack.
    Expr,
    /// Bodies, initials, comb nodes, and nb-site programs end balanced.
    Stmt,
}

/// Checks the stack discipline of one program: branch targets in bounds,
/// no underflow on any path, consistent depth at every join, and the
/// role-appropriate final depth. The pass manager runs this after every
/// pass and reverts the pass if it fails, so a pass bug degrades to a
/// missed optimization instead of a miscompile.
pub(crate) fn check_code(code: &[Op], kind: ProgKind) -> Result<(), String> {
    use std::collections::BTreeMap;
    for op in code {
        if let Some(t) = branch_target(op) {
            if t as usize > code.len() {
                return Err(format!("branch target {} out of bounds", t));
            }
        }
    }
    // Worklist depth analysis over block starts.
    let mut depth_in: BTreeMap<usize, i64> = BTreeMap::from([(0, 0)]);
    let mut work = vec![0usize];
    let mut final_depth: Option<i64> = None;
    let merge = |depth_in: &mut BTreeMap<usize, i64>,
                 work: &mut Vec<usize>,
                 pc: usize,
                 d: i64|
     -> Result<(), String> {
        match depth_in.get(&pc) {
            Some(&old) if old == d => Ok(()),
            Some(&old) => Err(format!("depth mismatch at pc {}: {} vs {}", pc, old, d)),
            None => {
                depth_in.insert(pc, d);
                work.push(pc);
                Ok(())
            }
        }
    };
    while let Some(start) = work.pop() {
        let mut d = depth_in[&start];
        let mut pc = start;
        while pc < code.len() {
            let op = &code[pc];
            let (pops, pushes) = stack_effect(op);
            d -= pops as i64;
            if d < 0 {
                return Err(format!("stack underflow at pc {}", pc));
            }
            d += pushes as i64;
            if let Some(t) = branch_target(op) {
                merge(&mut depth_in, &mut work, t as usize, d)?;
                if matches!(op, Op::Jump(_)) {
                    break;
                }
            }
            pc += 1;
            if pc < code.len()
                && depth_in.contains_key(&pc)
                && branch_target(&code[pc - 1]).is_some()
            {
                // Fall through into an already-seen block start.
                merge(&mut depth_in, &mut work, pc, d)?;
                break;
            }
        }
        if pc >= code.len() {
            match final_depth {
                Some(f) if f != d => {
                    return Err(format!("inconsistent final depth: {} vs {}", f, d))
                }
                _ => final_depth = Some(d),
            }
        }
    }
    let want = match kind {
        ProgKind::Expr => 1,
        ProgKind::Stmt => 0,
    };
    match final_depth {
        Some(d) if d != want => Err(format!("final stack depth {} (expected {})", d, want)),
        _ => Ok(()),
    }
}

/// Runs [`check_code`] over every program in `prog`.
pub(crate) fn check_program(prog: &CompiledProgram) -> Result<(), String> {
    for (i, node) in prog.comb.iter().enumerate() {
        check_code(&node.code, ProgKind::Stmt).map_err(|e| format!("comb node {}: {}", i, e))?;
    }
    for (i, a) in prog.always.iter().enumerate() {
        for (j, (_, g)) in a.guards.iter().enumerate() {
            check_code(g, ProgKind::Expr)
                .map_err(|e| format!("always {} guard {}: {}", i, j, e))?;
        }
        check_code(&a.body, ProgKind::Stmt).map_err(|e| format!("always {} body: {}", i, e))?;
    }
    for (i, c) in prog.initials.iter().enumerate() {
        check_code(c, ProgKind::Stmt).map_err(|e| format!("initial {}: {}", i, e))?;
    }
    for (i, c) in prog.nb_sites.iter().enumerate() {
        check_code(c, ProgKind::Stmt).map_err(|e| format!("nb site {}: {}", i, e))?;
    }
    Ok(())
}
