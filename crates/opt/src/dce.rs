//! Dead-code elimination over the comb netlist: removes driver nodes whose
//! outputs can never be observed.
//!
//! Liveness roots are everything the outside world or the procedural side
//! can see: ports, registers (snapshots and `$save` capture them), nets
//! and memories read by `always` guards, `@*` sensitivity lists, bodies,
//! `initial` blocks, or nb-site programs — and any comb node containing an
//! op with side effects beyond plain stores. Liveness propagates backward:
//! a node driving a live slot is live, and everything it reads becomes
//! live. Dead nodes are removed; their nets keep their declarations (slot
//! indices are baked into bytecode and name tables) and simply stay at
//! their init value.

use std::collections::BTreeSet;

use crate::relevel::{rebuild_tables, slot_use};
use synergy_codegen::ir::{CompiledProgram, Op, SlotRef};

/// Runs the pass; returns the number of comb nodes removed.
pub(crate) fn run(prog: &mut CompiledProgram) -> u64 {
    let mut live_nets: BTreeSet<u32> = BTreeSet::new();
    let mut live_mems: BTreeSet<u32> = BTreeSet::new();
    for (i, d) in prog.nets.iter().enumerate() {
        if d.is_register || d.is_port {
            live_nets.insert(i as u32);
        }
    }
    for (i, d) in prog.mems.iter().enumerate() {
        if d.is_register {
            live_mems.insert(i as u32);
        }
    }
    // Procedural reads and writes both root a slot: a procedurally-written
    // net with a comb driver is a multi-driver oddity we leave untouched.
    fn scan(code: &[Op], live_nets: &mut BTreeSet<u32>, live_mems: &mut BTreeSet<u32>) {
        let u = slot_use(code);
        live_nets.extend(u.reads_nets.iter().chain(u.write_nets.iter()));
        live_mems.extend(u.reads_mems.iter().chain(u.write_mems.iter()));
    }
    for a in &prog.always {
        for (_, g) in &a.guards {
            scan(g, &mut live_nets, &mut live_mems);
        }
        scan(&a.body, &mut live_nets, &mut live_mems);
        for s in &a.star {
            match s {
                SlotRef::Net(n) => {
                    live_nets.insert(*n);
                }
                SlotRef::Mem(m) => {
                    live_mems.insert(*m);
                }
            }
        }
    }
    for c in &prog.initials {
        scan(c, &mut live_nets, &mut live_mems);
    }
    for c in &prog.nb_sites {
        scan(c, &mut live_nets, &mut live_mems);
    }

    let uses: Vec<_> = prog.comb.iter().map(|n| slot_use(&n.code)).collect();
    let rooted: Vec<bool> = prog
        .comb
        .iter()
        .map(|n| n.code.iter().any(has_observable_effect))
        .collect();
    let mut live_node = vec![false; prog.comb.len()];
    // Backward propagation to a fixpoint. Node order is topological, so a
    // reverse sweep converges in one pass, but iterate defensively.
    loop {
        let mut changed = false;
        for i in (0..prog.comb.len()).rev() {
            if live_node[i] {
                continue;
            }
            let u = &uses[i];
            let alive = rooted[i]
                || u.write_nets.iter().any(|n| live_nets.contains(n))
                || u.write_mems.iter().any(|m| live_mems.contains(m));
            if alive {
                live_node[i] = true;
                live_nets.extend(u.reads_nets.iter());
                live_mems.extend(u.reads_mems.iter());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let before = prog.comb.len();
    let mut keep = live_node.iter();
    prog.comb.retain(|_| *keep.next().unwrap());
    let removed = (before - prog.comb.len()) as u64;
    if removed > 0 {
        let _ = rebuild_tables(prog);
    }
    removed
}

/// `true` for ops whose presence forces a comb node to stay: anything that
/// is neither a pure value op, plain stack/control plumbing, nor a store.
fn has_observable_effect(op: &Op) -> bool {
    if crate::analysis::is_speculable(op) {
        return false;
    }
    !matches!(
        op,
        Op::Jump(_)
            | Op::JumpIfZero(_)
            | Op::JumpIfNonZero(_)
            | Op::Pop
            | Op::StoreTemp(_)
            | Op::StoreNet(_)
            | Op::StoreBit(_)
            | Op::StoreSliceDyn(_)
            | Op::StoreMem(_)
            | Op::StoreMemConst { .. }
    )
}
