//! Correctness harness for the optimization pipeline: every design runs in
//! lockstep on the reference interpreter, the unoptimized compiled engine,
//! and the optimized compiled engine, asserting bit-identical snapshots,
//! output, and effects at every tick. A proptest leg checks that *any*
//! subset of passes is snapshot-identical to `O0`.

use proptest::prelude::*;
use synergy_codegen::CompiledSim;
use synergy_interp::{BufferEnv, Interpreter};
use synergy_opt::{optimize_with_passes, OptReport, PASS_NAMES};

/// All tricky-corner designs, shared between the lockstep tests and the
/// pass-subset proptest.
const CORPUS: &[(&str, &str, &str, usize)] = &[
    (
        "ternaries",
        r#"module M(input wire clock, output wire [7:0] out);
               reg [7:0] a = 3;
               reg [7:0] b = 250;
               wire [7:0] m = (a > b) ? a : b;
               wire [7:0] n = a[0] ? (m + 1) : (m - 1);
               always @(posedge clock) begin
                   a <= a + 7;
                   if (b > 8'd128) b <= b - 3; else b <= b + 9;
               end
               assign out = m ^ n;
           endmodule"#,
        "clock",
        200,
    ),
    (
        "common_subexpressions",
        r#"module M(input wire clock, output wire [31:0] out);
               reg [15:0] x = 1;
               reg [15:0] y = 2;
               wire [31:0] p = (x * y) + (x * y) + ((x * y) >> 3);
               reg [31:0] acc = 0;
               always @(posedge clock) begin
                   acc <= acc + (x + y) * (x + y);
                   x <= x + 3;
                   y <= y ^ (x + y) * (x + y);
               end
               assign out = p + acc;
           endmodule"#,
        "clock",
        150,
    ),
    (
        "strength_candidates",
        r#"module M(input wire clock, output wire [31:0] out);
               reg [31:0] v = 7;
               wire [31:0] a = v * 8;
               wire [31:0] b = v / 4;
               wire [31:0] c = v % 16;
               wire [31:0] d = (v + 0) | 0;
               wire [31:0] e = v * 1;
               wire [31:0] f = v * 0;
               always @(posedge clock) v <= v * 3 + 1;
               assign out = a + b + c + d + e + f;
           endmodule"#,
        "clock",
        100,
    ),
    (
        "dead_and_double_stores",
        r#"module M(input wire clock, output wire [15:0] out);
               reg [15:0] r = 0;
               reg [15:0] s = 0;
               reg [7:0] mem [0:3];
               always @(posedge clock) begin
                   r = 16'd1;
                   r = 16'd2;
                   r = r + s;
                   mem[1] = 8'd9;
                   mem[1] = r[7:0];
                   s <= s + mem[1];
               end
               assign out = r + s;
           endmodule"#,
        "clock",
        120,
    ),
    (
        "const_and_copy_nets",
        r#"module M(input wire clock, output wire [15:0] out);
               wire [15:0] k = 16'h1234;
               wire [15:0] kk = k;
               reg [15:0] r = 0;
               wire [15:0] sum = kk + r;
               always @(posedge clock) r <= r + kk[3:0];
               assign out = sum;
           endmodule"#,
        "clock",
        100,
    ),
    (
        "fusable_plumbing",
        r#"module M(input wire clock, output wire [31:0] out);
               reg [15:0] x = 5;
               wire [31:0] t1 = x * 3;
               wire [31:0] t2 = t1 + 7;
               wire [31:0] t3 = t2 ^ (t2 >> 2);
               wire [31:0] unused = t2 * 99;
               always @(posedge clock) x <= x + 11;
               assign out = t3;
           endmodule"#,
        "clock",
        120,
    ),
    (
        "nb_latch_boundary",
        r#"module M(input wire clock, output wire [15:0] out);
               reg [15:0] a = 1;
               reg [15:0] b = 0;
               reg [15:0] seen = 0;
               always @(posedge clock) begin
                   // a+b is read, a is NB-assigned, then a+b is read again:
                   // both reads must see the PRE-latch a.
                   seen = a + b;
                   a <= a + 5;
                   seen = seen + (a + b);
                   b <= seen[7:0];
               end
               assign out = seen;
           endmodule"#,
        "clock",
        150,
    ),
    (
        "guards_and_star",
        r#"module M(input wire clock, output wire [7:0] out);
               reg [7:0] div = 0;
               reg [7:0] cnt = 0;
               reg [7:0] m = 0;
               wire gate = div[1];
               always @(posedge clock) div <= div + 1;
               always @(posedge gate) cnt <= cnt + 1;
               always @* m = cnt > div ? cnt : div;
               assign out = m;
           endmodule"#,
        "clock",
        200,
    ),
    (
        "finish_and_effects",
        r#"module M(input wire clock);
               reg [31:0] n = 0;
               always @(posedge clock) begin
                   $yield;
                   n <= n + 1;
                   if (n == 3) $save("ckpt");
                   if (n == 40) $finish(5);
               end
           endmodule"#,
        "clock",
        50,
    ),
    (
        "file_io_loops_mems",
        r#"module M(input wire clock, output wire [31:0] out);
               integer fd = $fopen("data.bin");
               reg [31:0] buffer [0:7];
               reg [31:0] total = 0;
               integer i = 0;
               always @(posedge clock) begin
                   for (i = 0; i < 4; i = i + 1)
                       $fread(fd, buffer[i]);
                   total = 0;
                   for (i = 0; i < 4; i = i + 1)
                       total = total + buffer[i] * 4 + (buffer[i] % 8);
                   if ($feof(fd)) $finish(0);
               end
               assign out = total;
           endmodule"#,
        "clock",
        20,
    ),
    (
        "wide_values",
        r#"module M(input wire clock, output wire [31:0] lo);
               reg [127:0] acc = 128'd1;
               wire [127:0] dbl = acc * 2;
               wire [127:0] same = dbl + dbl;
               always @(posedge clock) acc <= same - (acc >> 3) + 1;
               assign lo = acc[31:0];
           endmodule"#,
        "clock",
        80,
    ),
    (
        "nb_direct_candidate",
        r#"module M(input wire clock, output wire [15:0] out);
               // Single always block; a and b are only observed through
               // their own comb cone, which nothing else reads — the
               // nbdirect pass may turn both latches into direct stores.
               reg [15:0] a = 1;
               reg [15:0] b = 2;
               wire [15:0] s = a + b;
               wire [15:0] t = (s << 1) ^ a;
               always @(posedge clock) begin
                   a <= a + 3;
                   b <= b ^ s;
               end
               assign out = t;
           endmodule"#,
        "clock",
        200,
    ),
    (
        "nb_cross_block_observer",
        r#"module M(input wire clock, output wire [15:0] out);
               // p is read by the negedge block, so its latch delay IS
               // observable and must survive; q is only read by its own
               // single-fire owner, so it may convert.
               reg [7:0] p = 0;
               reg [15:0] q = 0;
               always @(posedge clock) p <= p + 1;
               always @(negedge clock) q <= q + p;
               assign out = q + p;
           endmodule"#,
        "clock",
        200,
    ),
    (
        "one_arm_if_stores",
        r#"module M(input wire clock, output wire [15:0] out);
               reg [15:0] r = 0;
               reg [7:0] mem [0:3];
               reg [15:0] acc = 0;
               always @(posedge clock) begin
                   if (r[0]) r = r + 3;
                   if (r[1]) mem[2] = r[7:0];
                   if (r[2]) acc <= acc + 1;
                   r = r + 1;
               end
               assign out = r + acc + mem[2];
           endmodule"#,
        "clock",
        200,
    ),
];

fn files_for(name: &str) -> Vec<(String, Vec<u64>)> {
    if name == "file_io_loops_mems" {
        vec![("data.bin".to_string(), (1..=40).collect())]
    } else {
        Vec::new()
    }
}

/// Runs one corpus entry on interpreter + O0 + optimized-with-`passes`,
/// asserting lockstep equality. Returns the optimizer report.
fn run_lockstep(entry: &(&str, &str, &str, usize), passes: &[&str]) -> OptReport {
    let (name, src, clock, ticks) = *entry;
    let design = synergy_vlog::compile(src, "M").unwrap();
    let base = synergy_codegen::compile(&design).unwrap();
    let mut opt_prog = base.clone();
    let report = optimize_with_passes(&mut opt_prog, passes);

    let mut interp = Interpreter::new(design);
    let mut o0 = CompiledSim::new(base);
    let mut opt = CompiledSim::new(opt_prog);
    let mut ienv = BufferEnv::new();
    let mut zenv = BufferEnv::new();
    let mut oenv = BufferEnv::new();
    for (path, data) in files_for(name) {
        ienv.add_file(path.clone(), data.clone());
        zenv.add_file(path.clone(), data.clone());
        oenv.add_file(path, data);
    }
    for t in 0..ticks {
        interp.tick(clock, &mut ienv).unwrap();
        o0.tick(clock, &mut zenv).unwrap();
        opt.tick(clock, &mut oenv).unwrap();
        assert_eq!(
            interp.save_state(),
            opt.save_state(),
            "{}: optimized snapshot diverges from interpreter at tick {} (passes {:?})",
            name,
            t,
            passes
        );
        assert_eq!(
            o0.save_state(),
            opt.save_state(),
            "{}: optimized snapshot diverges from O0 at tick {}",
            name,
            t
        );
        assert_eq!(
            interp.finished(),
            opt.finished(),
            "{}: finish diverges",
            name
        );
    }
    assert_eq!(ienv.output_text(), oenv.output_text(), "{}: output", name);
    assert_eq!(
        interp.take_effects(),
        opt.take_effects(),
        "{}: effects",
        name
    );
    report
}

#[test]
fn full_pipeline_matches_interpreter_on_corpus() {
    let mut any_reverted = Vec::new();
    for entry in CORPUS {
        let report = run_lockstep(entry, &PASS_NAMES);
        for p in &report.passes {
            if p.reverted {
                any_reverted.push(format!("{}: {}", entry.0, p.name));
            }
        }
    }
    assert!(
        any_reverted.is_empty(),
        "passes were reverted (legal but indicates a pass bug): {:?}",
        any_reverted
    );
}

#[test]
fn each_pass_alone_matches_interpreter_on_corpus() {
    for pass in PASS_NAMES {
        for entry in CORPUS {
            run_lockstep(entry, &[pass]);
        }
    }
}

#[test]
fn pipeline_actually_optimizes() {
    // The pipeline must shrink its target patterns, not just be harmless.
    let fires = |name: &str, min: u64| {
        let entry = CORPUS.iter().find(|e| e.0 == name).unwrap();
        let design = synergy_vlog::compile(entry.1, "M").unwrap();
        let mut prog = synergy_codegen::compile(&design).unwrap();
        let report = synergy_opt::optimize(&mut prog);
        assert!(
            report.total_rewrites() >= min,
            "{}: expected >= {} rewrites, report: {:?}",
            name,
            min,
            report.passes
        );
        report
    };
    fires("ternaries", 1);
    fires("common_subexpressions", 2);
    fires("strength_candidates", 3);
    fires("dead_and_double_stores", 1);
    fires("const_and_copy_nets", 1);
    let r = fires("fusable_plumbing", 2);
    let dce = r.passes.iter().find(|p| p.name == "dce").unwrap();
    assert!(dce.rewrites >= 1, "unused wire cone should be removed");
}

#[test]
fn dce_keeps_guard_read_and_register_nets() {
    // The `gate` net feeds a posedge guard; its driver must survive even
    // though no comb node reads it. Registers survive unconditionally
    // (snapshots and $save capture them).
    let entry = CORPUS.iter().find(|e| e.0 == "guards_and_star").unwrap();
    let design = synergy_vlog::compile(entry.1, "M").unwrap();
    let mut prog = synergy_codegen::compile(&design).unwrap();
    let synergy_codegen::SlotRef::Net(gate) = prog.slot("gate").expect("gate net exists") else {
        panic!("gate is a net");
    };
    synergy_opt::optimize_with_passes(&mut prog, &["dce"]);
    let still_driven = prog.comb.iter().any(|n| {
        n.code
            .iter()
            .any(|op| matches!(op, synergy_codegen::Op::StoreNet(s) if *s == gate))
    });
    assert!(still_driven, "guard-read net lost its driver");
}

#[test]
fn cse_does_not_merge_reads_across_nb_latch() {
    // Behavioral check of the NB rule: `a + b` before and after `a <= ...`
    // must both see the pre-latch value — which CSE exploits (both reads
    // merge) precisely BECAUSE NbSchedule does not change net state. The
    // lockstep harness proves the merged program still matches.
    let entry = CORPUS.iter().find(|e| e.0 == "nb_latch_boundary").unwrap();
    run_lockstep(entry, &["cse"]);
    // And with a blocking store between the reads, CSE must NOT merge:
    // exercised by `dead_and_double_stores` (r = ...; r = r + s).
    let entry = CORPUS
        .iter()
        .find(|e| e.0 == "dead_and_double_stores")
        .unwrap();
    run_lockstep(entry, &["cse"]);
}

#[test]
fn nbdirect_converts_only_provably_unobservable_latches() {
    let schedules_left = |name: &str| {
        let entry = CORPUS.iter().find(|e| e.0 == name).unwrap();
        let design = synergy_vlog::compile(entry.1, "M").unwrap();
        let mut prog = synergy_codegen::compile(&design).unwrap();
        optimize_with_passes(&mut prog, &["nbdirect"]);
        prog.always
            .iter()
            .flat_map(|a| a.body.iter())
            .filter(|op| matches!(op, synergy_codegen::Op::NbSchedule(_)))
            .count()
    };
    // Both latches in the single-block design convert.
    assert_eq!(schedules_left("nb_direct_candidate"), 0);
    // p is observed cross-block and must keep its latch; q converts.
    assert_eq!(schedules_left("nb_cross_block_observer"), 1);
    // The read-after-schedule latch must survive: the body reads `a + b`
    // after `a <= ...`, so a's latch delay is observable. b's schedule is
    // the body's last op with no other observer, so it still converts.
    assert_eq!(schedules_left("nb_latch_boundary"), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn any_pass_subset_is_snapshot_identical_to_o0(
        mask in 0u16..1024u16,
        idx in 0usize..CORPUS.len(),
    ) {
        let passes: Vec<&str> = PASS_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &n)| n)
            .collect();
        run_lockstep(&CORPUS[idx], &passes);
    }
}
