//! The AmorphOS hull: isolation boundary, compatibility layer, and scheduler.
//!
//! The hull mediates OS-managed resources for the Morphlets sharing a fabric
//! (§2.2). It enforces cross-domain protection (a Morphlet can only touch its own
//! control-register window), admits Morphlets onto the fabric while space remains,
//! falls back to time-sharing when space-sharing is infeasible, and notifies
//! applications through the quiescence interface before they lose access to the
//! FPGA (§5.3).

use crate::morphlet::{DomainId, Morphlet, MorphletId, MorphletState, Quiescence};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use synergy_fpga::{Device, Fabric, SynthReport};

/// Errors raised by the hull.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HullError {
    /// The referenced Morphlet does not exist.
    UnknownMorphlet(u64),
    /// A protection-domain violation was attempted.
    ProtectionViolation {
        /// The domain that attempted the access.
        accessor: u64,
        /// The domain that owns the target.
        owner: u64,
    },
}

impl fmt::Display for HullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HullError::UnknownMorphlet(id) => write!(f, "unknown morphlet {}", id),
            HullError::ProtectionViolation { accessor, owner } => write!(
                f,
                "protection violation: domain {} attempted to access domain {}",
                accessor, owner
            ),
        }
    }
}

impl std::error::Error for HullError {}

/// A scheduling decision for one Morphlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Spatially resident: runs every scheduling round.
    Spatial,
    /// Time-shared: runs only when its turn comes up.
    Temporal,
}

/// A notification delivered to an application before it loses the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuiescenceNotice {
    /// The Morphlet being notified.
    pub morphlet: MorphletId,
    /// Whether SYNERGY will capture state transparently or the application must
    /// act on the notice itself.
    pub transparent: bool,
}

/// The AmorphOS hull around one fabric.
#[derive(Debug)]
pub struct Hull {
    fabric_capacity_luts: u64,
    fabric_capacity_ffs: u64,
    morphlets: BTreeMap<MorphletId, Morphlet>,
    next_id: u64,
    /// Round-robin cursor for time-shared Morphlets.
    cursor: usize,
}

impl Hull {
    /// Creates a hull for the given device.
    pub fn new(device: &Device) -> Self {
        Hull {
            fabric_capacity_luts: device.lut_capacity,
            fabric_capacity_ffs: device.ff_capacity,
            morphlets: BTreeMap::new(),
            next_id: 1,
            cursor: 0,
        }
    }

    /// Creates a hull sized from an existing fabric.
    pub fn for_fabric(fabric: &Fabric) -> Self {
        Self::new(fabric.device())
    }

    /// Registers a new Morphlet owned by `domain` with the given footprint.
    pub fn register(
        &mut self,
        domain: DomainId,
        name: impl Into<String>,
        resources: SynthReport,
        quiescence: Quiescence,
    ) -> MorphletId {
        let id = MorphletId(self.next_id);
        self.next_id += 1;
        self.morphlets.insert(
            id,
            Morphlet {
                id,
                domain,
                name: name.into(),
                resources,
                state: MorphletState::Queued,
                quiescence,
            },
        );
        self.schedule();
        id
    }

    /// Retires a Morphlet; its fabric share is reclaimed at the next recompilation.
    ///
    /// # Errors
    ///
    /// Returns [`HullError::UnknownMorphlet`] if the id is not registered.
    pub fn retire(&mut self, id: MorphletId) -> Result<(), HullError> {
        let m = self
            .morphlets
            .get_mut(&id)
            .ok_or(HullError::UnknownMorphlet(id.0))?;
        m.state = MorphletState::Retired;
        self.schedule();
        Ok(())
    }

    /// Looks up a Morphlet.
    ///
    /// # Errors
    ///
    /// Returns [`HullError::UnknownMorphlet`] if the id is not registered.
    pub fn morphlet(&self, id: MorphletId) -> Result<&Morphlet, HullError> {
        self.morphlets
            .get(&id)
            .ok_or(HullError::UnknownMorphlet(id.0))
    }

    /// All registered, non-retired Morphlets.
    pub fn active(&self) -> Vec<&Morphlet> {
        self.morphlets
            .values()
            .filter(|m| m.state != MorphletState::Retired)
            .collect()
    }

    /// Checks a cross-domain access: `accessor` may only touch Morphlets in its own
    /// protection domain. This is the isolation property Synergy inherits from
    /// AmorphOS when sharing fabric (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`HullError::ProtectionViolation`] when the domains differ, or
    /// [`HullError::UnknownMorphlet`] if the target does not exist.
    pub fn check_access(&self, accessor: DomainId, target: MorphletId) -> Result<(), HullError> {
        let m = self.morphlet(target)?;
        if m.domain != accessor {
            return Err(HullError::ProtectionViolation {
                accessor: accessor.0,
                owner: m.domain.0,
            });
        }
        Ok(())
    }

    /// Returns the current placement of each active Morphlet.
    pub fn placements(&self) -> BTreeMap<MorphletId, Placement> {
        self.morphlets
            .values()
            .filter(|m| m.state != MorphletState::Retired)
            .map(|m| {
                let placement = if m.state == MorphletState::Resident {
                    Placement::Spatial
                } else {
                    Placement::Temporal
                };
                (m.id, placement)
            })
            .collect()
    }

    /// Recomputes placements: Morphlets are admitted spatially in registration
    /// order while LUT/FF budget remains, and time-shared afterwards.
    fn schedule(&mut self) {
        let mut used_luts = 0u64;
        let mut used_ffs = 0u64;
        for m in self.morphlets.values_mut() {
            if m.state == MorphletState::Retired {
                continue;
            }
            let fits = used_luts + m.resources.luts <= self.fabric_capacity_luts
                && used_ffs + m.resources.ffs <= self.fabric_capacity_ffs;
            if fits {
                used_luts += m.resources.luts;
                used_ffs += m.resources.ffs;
                m.state = MorphletState::Resident;
            } else {
                m.state = MorphletState::TimeShared;
            }
        }
    }

    /// Picks the next time-shared Morphlet to run, round-robin. Returns `None` when
    /// nothing is time-shared (everything fits spatially).
    pub fn next_time_slice(&mut self) -> Option<MorphletId> {
        let shared: Vec<MorphletId> = self
            .morphlets
            .values()
            .filter(|m| m.state == MorphletState::TimeShared)
            .map(|m| m.id)
            .collect();
        if shared.is_empty() {
            return None;
        }
        let pick = shared[self.cursor % shared.len()];
        self.cursor = (self.cursor + 1) % shared.len();
        Some(pick)
    }

    /// Builds the quiescence notices that must be delivered before a destructive
    /// reconfiguration (Figure 7's step 2).
    pub fn quiescence_notices(&self) -> Vec<QuiescenceNotice> {
        self.morphlets
            .values()
            .filter(|m| m.state != MorphletState::Retired)
            .map(|m| QuiescenceNotice {
                morphlet: m.id,
                transparent: m.quiescence == Quiescence::Transparent,
            })
            .collect()
    }

    /// Total LUTs used by resident Morphlets.
    pub fn resident_luts(&self) -> u64 {
        self.morphlets
            .values()
            .filter(|m| m.is_resident())
            .map(|m| m.resources.luts)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(luts: u64) -> SynthReport {
        SynthReport {
            luts,
            ffs: luts / 2,
            bram_bits: 0,
            critical_path_ps: 4000,
            achieved_hz: 250_000_000,
            synth_latency_ns: 1,
            met_timing_at_target: true,
        }
    }

    fn hull() -> Hull {
        Hull::new(&Device::de10())
    }

    #[test]
    fn morphlets_admit_spatially_until_full() {
        let mut h = hull();
        let a = h.register(DomainId(1), "a", report(60_000), Quiescence::Transparent);
        let b = h.register(DomainId(2), "b", report(40_000), Quiescence::Transparent);
        let c = h.register(DomainId(3), "c", report(30_000), Quiescence::Transparent);
        let p = h.placements();
        assert_eq!(p[&a], Placement::Spatial);
        assert_eq!(p[&b], Placement::Spatial);
        assert_eq!(p[&c], Placement::Temporal, "110K LUT device is full");
        assert_eq!(h.resident_luts(), 100_000);
    }

    #[test]
    fn retiring_frees_space_for_time_shared_morphlets() {
        let mut h = hull();
        let a = h.register(DomainId(1), "a", report(80_000), Quiescence::Transparent);
        let b = h.register(DomainId(2), "b", report(80_000), Quiescence::Transparent);
        assert_eq!(h.placements()[&b], Placement::Temporal);
        h.retire(a).unwrap();
        assert_eq!(h.placements()[&b], Placement::Spatial);
        assert_eq!(h.active().len(), 1);
    }

    #[test]
    fn cross_domain_access_is_denied() {
        let mut h = hull();
        let a = h.register(DomainId(1), "a", report(1000), Quiescence::Transparent);
        h.check_access(DomainId(1), a).unwrap();
        let err = h.check_access(DomainId(2), a).unwrap_err();
        assert!(matches!(
            err,
            HullError::ProtectionViolation {
                accessor: 2,
                owner: 1
            }
        ));
    }

    #[test]
    fn unknown_morphlet_errors() {
        let h = hull();
        assert!(matches!(
            h.morphlet(MorphletId(42)),
            Err(HullError::UnknownMorphlet(42))
        ));
    }

    #[test]
    fn time_slices_rotate_round_robin() {
        let mut h = hull();
        h.register(DomainId(1), "big", report(100_000), Quiescence::Transparent);
        let b = h.register(DomainId(2), "b", report(90_000), Quiescence::Transparent);
        let c = h.register(DomainId(3), "c", report(90_000), Quiescence::Transparent);
        let first = h.next_time_slice().unwrap();
        let second = h.next_time_slice().unwrap();
        let third = h.next_time_slice().unwrap();
        assert_ne!(first, second);
        assert_eq!(first, third);
        assert!([b, c].contains(&first));
    }

    #[test]
    fn no_time_slice_when_everything_fits() {
        let mut h = hull();
        h.register(DomainId(1), "a", report(10), Quiescence::Transparent);
        assert!(h.next_time_slice().is_none());
    }

    #[test]
    fn quiescence_notices_reflect_mode() {
        let mut h = hull();
        h.register(
            DomainId(1),
            "transparent",
            report(10),
            Quiescence::Transparent,
        );
        h.register(
            DomainId(2),
            "managed",
            report(10),
            Quiescence::ApplicationManaged,
        );
        let notices = h.quiescence_notices();
        assert_eq!(notices.len(), 2);
        assert!(notices[0].transparent);
        assert!(!notices[1].transparent);
    }
}
