//! # synergy-amorphos
//!
//! An AmorphOS-like OS-level protection layer for FPGAs (§2.2 of the SYNERGY
//! paper), rebuilt as a library so the SYNERGY hypervisor can target it as a
//! backend (§5.2).
//!
//! AmorphOS extends processes with *Morphlets*, spatially shares an FPGA among
//! Morphlets from mutually distrustful protection domains, falls back to
//! time-sharing when space runs out, and mediates access through a shell-like
//! *hull* that provides isolation and compatibility. It also exposes the
//! quiescence interface that SYNERGY satisfies transparently on behalf of
//! applications.
#![warn(missing_docs)]

mod hull;
mod morphlet;

pub use hull::{Hull, HullError, Placement, QuiescenceNotice};
pub use morphlet::{DomainId, Morphlet, MorphletId, MorphletState, Quiescence};

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_fpga::{Device, SynthOptions};

    #[test]
    fn hull_integrates_with_synth_estimates() {
        // End-to-end: estimate a real design and register it as a Morphlet.
        let device = Device::f1();
        let design = synergy_vlog::compile(
            r#"module M(input wire clock, output wire [31:0] out);
                   reg [31:0] acc = 0;
                   always @(posedge clock) acc <= acc + 3;
                   assign out = acc;
               endmodule"#,
            "M",
        )
        .unwrap();
        let report = synergy_fpga::estimate(&design, &device, SynthOptions::native(&device));
        let mut hull = Hull::new(&device);
        let id = hull.register(DomainId(1), "acc", report, Quiescence::Transparent);
        assert!(hull.morphlet(id).unwrap().is_resident());
    }
}
