//! Morphlets: the AmorphOS process-extension abstraction for FPGA execution (§2.2).
//!
//! A Morphlet couples a protection domain (the tenant/process that owns it) with a
//! resource footprint and a lifecycle. AmorphOS spatially shares an FPGA among
//! Morphlets from different protection domains and falls back to time-sharing when
//! space-sharing is infeasible.

use serde::{Deserialize, Serialize};
use synergy_fpga::SynthReport;

/// A tenant / protection domain identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub u64);

/// A Morphlet identifier, unique within one hull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MorphletId(pub u64);

/// Lifecycle of a Morphlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MorphletState {
    /// Registered but not yet placed on fabric.
    Queued,
    /// Resident on the fabric (spatially shared).
    Resident,
    /// Temporarily off the fabric, scheduled by time-sharing.
    TimeShared,
    /// Removed (its slots are reclaimed at the next recompilation).
    Retired,
}

/// Whether the Morphlet implements the quiescence interface (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quiescence {
    /// SYNERGY manages all state transparently (`non_volatile` by default).
    Transparent,
    /// The application asserts `$yield` and manages volatile state itself.
    ApplicationManaged,
}

/// A Morphlet: one application's presence inside the AmorphOS hull.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Morphlet {
    /// Identifier within the hull.
    pub id: MorphletId,
    /// Owning protection domain.
    pub domain: DomainId,
    /// Human-readable application name.
    pub name: String,
    /// Resource footprint of the compiled design.
    pub resources: SynthReport,
    /// Current lifecycle state.
    pub state: MorphletState,
    /// Quiescence mode.
    pub quiescence: Quiescence,
}

impl Morphlet {
    /// `true` if the Morphlet currently occupies fabric resources.
    pub fn is_resident(&self) -> bool {
        self.state == MorphletState::Resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SynthReport {
        SynthReport {
            luts: 1000,
            ffs: 500,
            bram_bits: 0,
            critical_path_ps: 4000,
            achieved_hz: 250_000_000,
            synth_latency_ns: 1,
            met_timing_at_target: true,
        }
    }

    #[test]
    fn residency_tracks_state() {
        let mut m = Morphlet {
            id: MorphletId(1),
            domain: DomainId(7),
            name: "bitcoin".into(),
            resources: report(),
            state: MorphletState::Queued,
            quiescence: Quiescence::Transparent,
        };
        assert!(!m.is_resident());
        m.state = MorphletState::Resident;
        assert!(m.is_resident());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<MorphletId> = [MorphletId(3), MorphletId(1)].into_iter().collect();
        assert_eq!(set.iter().next(), Some(&MorphletId(1)));
    }
}
