//! Durable tenant checkpoints: the `synergy-snapshot` wire format applied to
//! a whole [`Runtime`].
//!
//! In-memory state capture ([`Runtime::save`] / [`Runtime::restore`]) moves a
//! program between engines inside one process. This module makes the same
//! capture *durable*: [`Runtime::save_checkpoint`] encodes everything a fresh
//! process needs to resume the tenant — source program, engine placement,
//! architectural state, named `$save` checkpoints, the system-task
//! environment (open stream positions, captured output, RNG state), and the
//! simulated clocks — and [`Runtime::restore_checkpoint`] rebuilds a running
//! [`Runtime`] from those bytes. Cross-node live migration
//! (`Cluster::live_migrate` in `synergy-hv`) and the CI golden-checkpoint
//! gate both ride this exact byte path.
//!
//! Checkpoints are captured at virtual-tick boundaries (the only place the
//! runtime calls the engine's `save_state`), where non-blocking assignment
//! queues are structurally empty — pending NB schedules therefore never need
//! encoding, matching the in-memory
//! [`StateSnapshot`](synergy_interp::StateSnapshot) contract.
//!
//! ## Runtime payload layout (wire-format version 1, frame kind [`KIND_RUNTIME`])
//!
//! | field | encoding |
//! |-------|----------|
//! | name, source, top, clock | 4 strings |
//! | engine policy | `u8`: 0 interpreter, 1 compiled, 2 auto |
//! | compiled tier knob | `u8`: 0 stack, 1 regalloc |
//! | execution mode | `u8`: 0 software, 1 compiled, 2 hardware (+ device-name string) |
//! | flags | `u8`: bit 0 initials-run, bit 1 finished (+ `u32` exit code) |
//! | transform options | `u8`: bit 0 strip-tasks, bit 1 split-all-branches |
//! | clock\_hz, transport\_ns, now\_ns, ticks | 4 × `u64` |
//! | profiler | `u64` last-ticks, `f64` last-time, `u32` n × (`f64` time, `u64` ticks, `f64` hz) |
//! | environment | output strings, sorted files, stream images, next-fd, RNG, read count |
//! | live state | one `StateSnapshot` |
//! | named checkpoints | `u32` n × (tag string, `StateSnapshot`) |
//!
//! See the `synergy-snapshot` crate docs for the frame header, primitive
//! encodings, CRC trailer, and the version policy.

use crate::engine::{CompiledEngine, Engine, HardwareEngine, SoftwareEngine};
use crate::runtime::{CompiledTier, EnginePolicy, ExecMode, Profiler, Runtime, Sample};
use std::collections::BTreeMap;
use std::fmt;
use synergy_fpga::SimClock;
use synergy_interp::{BufferEnv, EnvImage, StreamImage};
use synergy_snapshot::{decode_frame_of, Reader, SnapshotError, Writer, KIND_RUNTIME};
use synergy_transform::{transform, TransformOptions};
use synergy_vlog::VlogError;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The bytes are not a valid checkpoint (truncation, corruption, wrong
    /// kind or version, malformed payload). Never a panic.
    Decode(SnapshotError),
    /// The bytes decoded, but rebuilding the runtime from the embedded
    /// program failed (it no longer compiles, transforms, or lowers under
    /// this build).
    Rebuild(VlogError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Decode(e) => write!(f, "checkpoint decode failed: {}", e),
            CheckpointError::Rebuild(e) => write!(f, "checkpoint rebuild failed: {}", e),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Decode(e)
    }
}

impl From<VlogError> for CheckpointError {
    fn from(e: VlogError) -> Self {
        CheckpointError::Rebuild(e)
    }
}

fn put_env(w: &mut Writer, env: &EnvImage) {
    w.put_u32(env.output.len() as u32);
    for s in &env.output {
        w.put_str(s);
    }
    w.put_u32(env.files.len() as u32);
    for (path, data) in &env.files {
        w.put_str(path);
        w.put_u32(data.len() as u32);
        for &v in data {
            w.put_u64(v);
        }
    }
    w.put_u32(env.streams.len() as u32);
    for stream in &env.streams {
        match stream {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                w.put_u32(s.data.len() as u32);
                for &v in &s.data {
                    w.put_u64(v);
                }
                w.put_u64(s.pos);
                w.put_bool(s.eof);
            }
        }
    }
    w.put_u32(env.next_fd);
    w.put_u64(env.rng_state);
    w.put_u64(env.reads);
}

fn get_env(r: &mut Reader<'_>) -> Result<EnvImage, SnapshotError> {
    let n_output = r.get_count(4)?;
    let mut output = Vec::with_capacity(n_output);
    for _ in 0..n_output {
        output.push(r.get_str()?);
    }
    let n_files = r.get_count(8)?;
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        let path = r.get_str()?;
        let len = r.get_count(8)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.get_u64()?);
        }
        files.push((path, data));
    }
    let n_streams = r.get_count(1)?;
    let mut streams = Vec::with_capacity(n_streams);
    for _ in 0..n_streams {
        streams.push(match r.get_u8()? {
            0 => None,
            1 => {
                let len = r.get_count(8)?;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(r.get_u64()?);
                }
                Some(StreamImage {
                    data,
                    pos: r.get_u64()?,
                    eof: r.get_bool()?,
                })
            }
            tag => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown stream tag {}",
                    tag
                )))
            }
        });
    }
    Ok(EnvImage {
        output,
        files,
        streams,
        next_fd: r.get_u32()?,
        rng_state: r.get_u64()?,
        reads: r.get_u64()?,
    })
}

fn put_profiler(w: &mut Writer, p: &Profiler) {
    w.put_u64(p.last_ticks);
    w.put_f64(p.last_time_s);
    w.put_u32(p.samples.len() as u32);
    for s in p.samples() {
        w.put_f64(s.time_s);
        w.put_u64(s.ticks);
        w.put_f64(s.virtual_hz);
    }
}

fn get_profiler(r: &mut Reader<'_>) -> Result<Profiler, SnapshotError> {
    let last_ticks = r.get_u64()?;
    let last_time_s = r.get_f64()?;
    let n = r.get_count(24)?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(Sample {
            time_s: r.get_f64()?,
            ticks: r.get_u64()?,
            virtual_hz: r.get_f64()?,
        });
    }
    Ok(Profiler {
        samples,
        last_time_s,
        last_ticks,
    })
}

impl Runtime {
    /// Serializes the complete tenant into the durable checkpoint wire
    /// format (see the [module docs](self) for the byte layout).
    ///
    /// Call this between [`Runtime::run_ticks`] calls — the tenant is then
    /// quiesced at a virtual-tick boundary, which is the state-capture
    /// contract shared with `$save` and engine migration. The returned bytes
    /// are self-contained: they embed the program source, so a fresh process
    /// (or a different cluster node) can resume from them alone.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.name);
        w.put_str(&self.source);
        w.put_str(&self.top);
        w.put_str(&self.clock);
        w.put_u8(match self.policy {
            EnginePolicy::Interpreter => 0,
            EnginePolicy::Compiled => 1,
            EnginePolicy::Auto => 2,
        });
        w.put_u8(match self.tier {
            CompiledTier::Stack => 0,
            CompiledTier::RegAlloc => 1,
        });
        match self.mode() {
            ExecMode::Software => w.put_u8(0),
            ExecMode::Compiled => w.put_u8(1),
            ExecMode::Hardware(device) => {
                w.put_u8(2);
                w.put_str(&device);
            }
        }
        let finished = self.finished();
        let mut flags = 0u8;
        if self.engine.initials_run() {
            flags |= 1;
        }
        if finished.is_some() {
            flags |= 2;
        }
        w.put_u8(flags);
        if let Some(code) = finished {
            w.put_u32(code);
        }
        let mut opts = 0u8;
        if self.transform_options.strip_tasks {
            opts |= 1;
        }
        if self.transform_options.split_all_branches {
            opts |= 2;
        }
        w.put_u8(opts);
        w.put_u64(self.clock_hz);
        w.put_u64(self.transport_ns);
        w.put_u64(self.sim.now_ns());
        w.put_u64(self.ticks);
        put_profiler(&mut w, &self.profiler);
        put_env(&mut w, &self.env.image());
        w.put_state(&self.engine.save_state());
        w.put_u32(self.checkpoints.len() as u32);
        for (tag, snapshot) in &self.checkpoints {
            w.put_str(tag);
            w.put_state(snapshot);
        }
        let bytes = w.into_frame(KIND_RUNTIME);
        if synergy_telemetry::enabled() {
            let mut t = self.telem.lock().unwrap_or_else(|e| e.into_inner());
            t.registry.counter_add(
                synergy_telemetry::Namespace::Det,
                "checkpoint_encode_bytes_total",
                &[],
                bytes.len() as u64,
            );
        }
        bytes
    }

    /// Rebuilds a running tenant from checkpoint bytes.
    ///
    /// The program is recompiled from the embedded source, the engine is
    /// reconstructed on the checkpointed rung of the engine ladder
    /// (interpreter, compiled tier, or hardware), architectural state and the
    /// system-task environment are restored bit for bit, and `initial`
    /// blocks are *not* replayed (their side effects, such as `$fopen`, are
    /// already reflected in the restored environment). Onward execution is
    /// bit-identical to the uninterrupted run — the property the CI
    /// `snapshot-compat` gate enforces on the committed goldens.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Decode`] for bytes that are not a valid
    /// version-1 runtime frame (truncation, corruption, unknown version —
    /// always typed, never a panic), and [`CheckpointError::Rebuild`] when
    /// the embedded program no longer compiles under this build.
    pub fn restore_checkpoint(bytes: &[u8]) -> Result<Runtime, CheckpointError> {
        // CRC/framing failures happen before any runtime exists to own the
        // count, so they land in the process-global telemetry registry
        // (exported by `fleetstat`, never merged into per-node metrics).
        let payload = decode_frame_of(bytes, KIND_RUNTIME).map_err(|e| {
            if matches!(e, SnapshotError::Corrupt { .. }) && synergy_telemetry::enabled() {
                synergy_telemetry::with_global(|r| {
                    r.counter_add(
                        synergy_telemetry::Namespace::Det,
                        "checkpoint_crc_failures_total",
                        &[],
                        1,
                    );
                });
            }
            e
        })?;
        let mut r = Reader::new(payload);
        let name = r.get_str()?;
        let source = r.get_str()?;
        let top = r.get_str()?;
        let clock = r.get_str()?;
        let policy = match r.get_u8()? {
            0 => EnginePolicy::Interpreter,
            1 => EnginePolicy::Compiled,
            2 => EnginePolicy::Auto,
            tag => {
                return Err(SnapshotError::Malformed(format!("unknown policy tag {}", tag)).into())
            }
        };
        let tier = match r.get_u8()? {
            0 => CompiledTier::Stack,
            1 => CompiledTier::RegAlloc,
            tag => {
                return Err(SnapshotError::Malformed(format!("unknown tier tag {}", tag)).into())
            }
        };
        let mode = match r.get_u8()? {
            0 => ExecMode::Software,
            1 => ExecMode::Compiled,
            2 => ExecMode::Hardware(r.get_str()?),
            tag => {
                return Err(SnapshotError::Malformed(format!("unknown mode tag {}", tag)).into())
            }
        };
        let flags = r.get_u8()?;
        let initials_run = flags & 1 != 0;
        let finished = if flags & 2 != 0 {
            Some(r.get_u32()?)
        } else {
            None
        };
        let opts = r.get_u8()?;
        let transform_options = TransformOptions {
            strip_tasks: opts & 1 != 0,
            split_all_branches: opts & 2 != 0,
        };
        let clock_hz = r.get_u64()?;
        let transport_ns = r.get_u64()?;
        let now_ns = r.get_u64()?;
        let ticks = r.get_u64()?;
        let profiler = get_profiler(&mut r)?;
        let env = get_env(&mut r)?;
        let live = r.get_state()?;
        let n_checkpoints = r.get_count(13)?;
        let mut checkpoints = BTreeMap::new();
        for _ in 0..n_checkpoints {
            let tag = r.get_str()?;
            let snapshot = r.get_state()?;
            checkpoints.insert(tag, snapshot);
        }
        r.finish()?;

        // Rebuild the program and seat it on the checkpointed engine rung.
        // The optimization level is deliberately NOT part of the wire format
        // (snapshots carry architectural state only); the restoring host's
        // environment decides, exactly as it decides the tier default.
        let design = synergy_vlog::compile(&source, &top)?;
        let opt_level = crate::runtime::OptLevel::from_env();
        let mut compiled = None;
        let mut transformed = None;
        let mut engine: Box<dyn Engine> = match &mode {
            ExecMode::Software => Box::new(SoftwareEngine::new(design.clone(), clock.clone())),
            ExecMode::Compiled => {
                let mut prog = synergy_codegen::compile(&design)?;
                compiled = Some(prog.clone());
                if opt_level == crate::runtime::OptLevel::O1 {
                    synergy_opt::optimize(&mut prog);
                }
                Box::new(CompiledEngine::from_program_with_tier(prog, &clock, tier)?)
            }
            ExecMode::Hardware(device) => {
                let t = transform(&design, transform_options)?;
                transformed = Some(t.clone());
                Box::new(HardwareEngine::new(t, device.clone(), clock.clone()))
            }
        };
        engine.restore_state(&live);
        if initials_run {
            engine.mark_initials_run();
        }

        let mut sim = SimClock::new();
        sim.advance_ns(now_ns);
        // Telemetry is observability, not architectural state: a restored
        // runtime starts with fresh counters and an empty flight recorder.
        let mut telem = synergy_telemetry::Telemetry::default();
        telem.registry.counter_add(
            synergy_telemetry::Namespace::Det,
            "checkpoint_decode_bytes_total",
            &[],
            bytes.len() as u64,
        );
        Ok(Runtime {
            name,
            source,
            top,
            clock,
            design,
            engine,
            env: BufferEnv::from_image(env),
            clock_hz,
            transport_ns,
            sim,
            ticks,
            profiler,
            checkpoints,
            transformed,
            transform_options,
            compiled,
            policy,
            tier,
            opt_level,
            finished,
            telem: std::sync::Mutex::new(telem),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_fpga::{BitstreamCache, Device};
    use synergy_snapshot::decode_frame;
    use synergy_vlog::Bits;

    const STREAMER: &str = r#"
        module Stream(input wire clock, output wire [31:0] out);
            integer fd = $fopen("stream.bin");
            reg [31:0] r = 0;
            reg [31:0] reads = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if (!$feof(fd)) reads <= reads + 1;
            end
            assign out = reads;
        endmodule
    "#;

    fn streamer(policy: EnginePolicy) -> Runtime {
        let mut rt = Runtime::with_policy("s", STREAMER, "Stream", "clock", policy).unwrap();
        rt.add_file("stream.bin", (0..64).map(|i| i * 3 + 1).collect());
        rt
    }

    #[test]
    fn checkpoint_round_trips_streams_without_replaying_initials() {
        // The $fopen initializer must run exactly once across the whole
        // checkpointed lifetime: the restored runtime continues the stream
        // from the captured position instead of re-opening it.
        for policy in [EnginePolicy::Interpreter, EnginePolicy::Compiled] {
            let mut original = streamer(policy);
            original.run_ticks(10).unwrap();
            let bytes = original.save_checkpoint();

            let mut restored = Runtime::restore_checkpoint(&bytes).unwrap();
            assert_eq!(restored.mode(), original.mode());
            assert_eq!(restored.ticks(), original.ticks());
            assert_eq!(restored.now_ns(), original.now_ns());
            assert_eq!(restored.peek_state(), original.peek_state());

            original.run_ticks(17).unwrap();
            restored.run_ticks(17).unwrap();
            assert_eq!(
                restored.peek_state(),
                original.peek_state(),
                "onward execution diverged under {:?}",
                policy
            );
            assert_eq!(
                restored.get_bits("reads").unwrap().to_u64(),
                27,
                "no records replayed, none skipped"
            );
        }
    }

    #[test]
    fn checkpoint_re_encodes_byte_identically() {
        for policy in [EnginePolicy::Interpreter, EnginePolicy::Auto] {
            let mut rt = streamer(policy);
            rt.run_ticks(9).unwrap();
            rt.save("mid");
            rt.run_ticks(3).unwrap();
            let bytes = rt.save_checkpoint();
            let restored = Runtime::restore_checkpoint(&bytes).unwrap();
            assert_eq!(
                restored.save_checkpoint(),
                bytes,
                "decode → encode must be the identity under {:?}",
                policy
            );
            assert!(restored.checkpoints().contains_key("mid"));
        }
    }

    #[test]
    fn hardware_mode_checkpoints_restore_onto_the_same_device() {
        let src = r#"module Counter(input wire clock, output wire [31:0] out);
                         reg [31:0] count = 0;
                         always @(posedge clock) count <= count + 1;
                         assign out = count;
                     endmodule"#;
        let mut rt = Runtime::new("c", src, "Counter", "clock").unwrap();
        let cache = BitstreamCache::new();
        rt.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        rt.run_ticks(13).unwrap();
        let bytes = rt.save_checkpoint();

        let mut restored = Runtime::restore_checkpoint(&bytes).unwrap();
        assert_eq!(restored.mode(), ExecMode::Hardware("f1".into()));
        assert_eq!(restored.clock_hz(), rt.clock_hz());
        restored.run_ticks(7).unwrap();
        rt.run_ticks(7).unwrap();
        assert_eq!(restored.peek_state(), rt.peek_state());
        assert_eq!(restored.get_bits("count").unwrap().to_u64(), 20);
    }

    #[test]
    fn finished_programs_stay_finished_across_the_wire() {
        let src = r#"module M(input wire clock);
                         reg [3:0] n = 0;
                         always @(posedge clock) begin
                             n <= n + 1;
                             if (n == 2) $finish(9);
                         end
                     endmodule"#;
        let mut rt = Runtime::new("f", src, "M", "clock").unwrap();
        rt.run_to_completion(100).unwrap();
        assert_eq!(rt.finished(), Some(9));
        let restored = Runtime::restore_checkpoint(&rt.save_checkpoint()).unwrap();
        assert_eq!(restored.finished(), Some(9));
    }

    #[test]
    fn corrupt_and_truncated_checkpoints_are_typed_errors() {
        let mut rt = streamer(EnginePolicy::Interpreter);
        rt.run_ticks(4).unwrap();
        let bytes = rt.save_checkpoint();

        // Truncation at a few representative boundaries.
        for len in [0, 3, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                Runtime::restore_checkpoint(&bytes[..len]),
                Err(CheckpointError::Decode(_))
            ));
        }
        // A flipped payload bit is caught by the CRC trailer.
        let mut bad = bytes.clone();
        bad[40] ^= 0x10;
        assert!(matches!(
            Runtime::restore_checkpoint(&bad),
            Err(CheckpointError::Decode(SnapshotError::Corrupt { .. }))
        ));
        // The pristine bytes still decode.
        assert!(decode_frame(&bytes).is_ok());
        assert!(Runtime::restore_checkpoint(&bytes).is_ok());
    }

    #[test]
    fn inputs_written_mid_run_survive_via_state() {
        let src = r#"module M(input wire clock, input wire [7:0] step, output wire [31:0] acc_o);
                         reg [31:0] acc = 0;
                         always @(posedge clock) acc <= acc + step;
                         assign acc_o = acc;
                     endmodule"#;
        let mut rt = Runtime::new("m", src, "M", "clock").unwrap();
        rt.set("step", Bits::from_u64(8, 5)).unwrap();
        rt.run_ticks(4).unwrap();
        let restored = Runtime::restore_checkpoint(&rt.save_checkpoint()).unwrap();
        assert_eq!(restored.get_bits("acc").unwrap().to_u64(), 20);
    }
}
