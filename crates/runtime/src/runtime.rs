//! The per-application SYNERGY runtime instance.
//!
//! A [`Runtime`] owns one user program: it parses and elaborates the source, starts
//! execution on a software engine (exactly as Cascade does), and can transparently
//! migrate the program to a hardware engine — or between hardware targets — using
//! the `$save`/`$restart` state-capture path (§3.5). It also keeps the
//! virtual-clock profile the paper's experiments report (hashes/s, instructions/s,
//! virtual frequency) against simulated wall-clock time.

use crate::engine::{
    CompiledEngine, Engine, EngineKind, HardwareEngine, SoftwareEngine, TickReport,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
pub use synergy_codegen::Tier as CompiledTier;
use synergy_fpga::{BitstreamCache, Device, SimClock, SynthOptions};
use synergy_interp::{BufferEnv, StateSnapshot, TaskEffect, Value};
pub use synergy_opt::OptLevel;
use synergy_telemetry::{Namespace, Telemetry, POW2_BUCKETS};
use synergy_transform::{transform, TransformOptions, Transformed};
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// A single throughput sample recorded by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulated wall time in seconds.
    pub time_s: f64,
    /// Virtual clock ticks executed so far.
    pub ticks: u64,
    /// Virtual clock frequency over the last sampling interval, in Hz.
    pub virtual_hz: f64,
}

/// Upper bound on the profiler's in-memory sample history. [`Profiler::record`]
/// drops the oldest samples past this, so long-running tenants keep a bounded
/// footprint; the full virtual-frequency distribution lives on in the
/// `runtime_virtual_hz` telemetry histogram, which never forgets.
pub const MAX_PROFILER_SAMPLES: usize = 512;

/// Records virtual-clock progress over simulated time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profiler {
    pub(crate) samples: Vec<Sample>,
    pub(crate) last_time_s: f64,
    pub(crate) last_ticks: u64,
}

impl Profiler {
    /// Records a sample at the given simulated time and cumulative tick count,
    /// evicting the oldest samples beyond [`MAX_PROFILER_SAMPLES`].
    pub fn record(&mut self, time_s: f64, ticks: u64) {
        let dt = time_s - self.last_time_s;
        let dticks = ticks.saturating_sub(self.last_ticks);
        let virtual_hz = if dt > 0.0 { dticks as f64 / dt } else { 0.0 };
        self.samples.push(Sample {
            time_s,
            ticks,
            virtual_hz,
        });
        if self.samples.len() > MAX_PROFILER_SAMPLES {
            let excess = self.samples.len() - MAX_PROFILER_SAMPLES;
            self.samples.drain(..excess);
        }
        self.last_time_s = time_s;
        self.last_ticks = ticks;
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Peak virtual frequency seen so far.
    pub fn peak_virtual_hz(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.virtual_hz)
            .fold(0.0, f64::max)
    }
}

/// Accounting for one call to [`Runtime::run_ticks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual clock ticks executed.
    pub ticks: u64,
    /// Native device cycles consumed.
    pub native_cycles: u64,
    /// ABI requests exchanged.
    pub abi_requests: u64,
    /// Unsynthesizable task traps serviced.
    pub tasks_handled: u64,
    /// Simulated nanoseconds that elapsed.
    pub elapsed_ns: u64,
}

/// Events surfaced to the caller after running the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeEvent {
    /// The program executed `$save("tag")`; the snapshot is stored under that tag.
    Saved(String),
    /// The program executed `$restart("tag")` and its state was restored.
    Restarted(String),
    /// The program reached a `$yield` quiescence point.
    Yielded,
    /// The program executed `$finish(code)`.
    Finished(u32),
}

/// Where the runtime currently executes the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Software interpretation.
    Software,
    /// Compiled software execution (levelized netlist + bytecode).
    Compiled,
    /// Hardware execution on the named device.
    Hardware(String),
}

/// How the runtime chooses among its software-side engines (§2.1's ladder of
/// progressively faster engines: interpret → compiled → hardware).
///
/// The compiled engine is itself two-tiered; the policy's companion knob
/// [`CompiledTier`] (see [`Runtime::set_compiled_tier`]) selects between the
/// stack-bytecode tier and the default register-allocated tier, with the
/// `SYNERGY_COMPILED_TIER=stack` environment variable as a global escape
/// hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EnginePolicy {
    /// Always interpret (the Cascade baseline and the semantic reference).
    #[default]
    Interpreter,
    /// Require the compiled engine; creation fails for uncompilable designs.
    Compiled,
    /// Prefer the compiled engine, falling back to the interpreter for
    /// designs outside the compilable envelope (unsynthesizable constructs
    /// such as multiply-driven nets or combinational `$random`).
    Auto,
}

/// The per-application runtime: program, engine, environment, and profile.
///
/// Fields are `pub(crate)` so the durable-checkpoint codec
/// (`crate::checkpoint`) can capture and reconstruct the full runtime.
pub struct Runtime {
    pub(crate) name: String,
    pub(crate) source: String,
    pub(crate) top: String,
    pub(crate) clock: String,
    pub(crate) design: ElabModule,
    pub(crate) engine: Box<dyn Engine>,
    /// System-task environment (file streams, captured output).
    pub env: BufferEnv,
    pub(crate) clock_hz: u64,
    pub(crate) transport_ns: u64,
    pub(crate) sim: SimClock,
    pub(crate) ticks: u64,
    pub(crate) profiler: Profiler,
    pub(crate) checkpoints: BTreeMap<String, StateSnapshot>,
    pub(crate) transformed: Option<Transformed>,
    pub(crate) transform_options: TransformOptions,
    /// Cached lowering for the compiled engine (mirrors `transformed` for the
    /// hardware path), so repeated engine migrations don't re-lower.
    pub(crate) compiled: Option<synergy_codegen::CompiledProgram>,
    pub(crate) policy: EnginePolicy,
    /// Which compiled-engine tier to instantiate (default from the
    /// environment; see [`CompiledTier::from_env`]).
    pub(crate) tier: CompiledTier,
    /// Whether the netlist optimization pipeline runs when a compiled
    /// engine is constructed (default from the environment; see
    /// [`OptLevel::from_env`]). The cached lowering in `compiled` always
    /// stays unoptimized — passes run on a clone at engine construction —
    /// and the level is **not** part of any checkpoint wire format.
    pub(crate) opt_level: OptLevel,
    pub(crate) finished: Option<u32>,
    /// Per-tenant telemetry: metrics registry + flight recorder. Behind a
    /// `Mutex` so read-only paths (`&self`) can record too; the runtime is
    /// owned by exactly one worker thread at a time, so the lock is
    /// uncontended. Telemetry never enters the durable-checkpoint wire
    /// format — a restored runtime starts with fresh counters.
    pub(crate) telem: Mutex<Telemetry>,
}

/// Runs the optimization pipeline over a freshly cloned lowering (no-op at
/// [`OptLevel::O0`]), recording per-pass statistics into the deterministic
/// telemetry namespace: rewrite and revert counters per pass plus the total
/// op shrinkage, so `fleetstat` can aggregate optimizer behaviour across a
/// fleet.
fn optimize_for_engine(
    mut prog: synergy_codegen::CompiledProgram,
    level: OptLevel,
    telem: &mut Telemetry,
    ticks: u64,
) -> synergy_codegen::CompiledProgram {
    if level == OptLevel::O0 {
        return prog;
    }
    let before = prog.op_count() as u64;
    let report = synergy_opt::optimize(&mut prog);
    let after = prog.op_count() as u64;
    for p in &report.passes {
        telem.registry.counter_add(
            Namespace::Det,
            "opt_pass_rewrites_total",
            &[("pass", p.name)],
            p.rewrites,
        );
        if p.reverted {
            telem.registry.counter_add(
                Namespace::Det,
                "opt_pass_reverts_total",
                &[("pass", p.name)],
                1,
            );
        }
    }
    telem.registry.counter_add(
        Namespace::Det,
        "opt_ops_removed_total",
        &[],
        before.saturating_sub(after),
    );
    telem.recorder.record(
        ticks,
        "optimize",
        format!(
            "{} -> {} ops, {} rewrites",
            before,
            after,
            report.total_rewrites()
        ),
    );
    prog
}

impl Runtime {
    /// Creates a runtime for the given program, starting in software execution.
    ///
    /// `clock` names the input port that carries the program's virtual clock.
    ///
    /// # Errors
    ///
    /// Returns an error if the source fails to parse or elaborate.
    pub fn new(
        name: impl Into<String>,
        source: &str,
        top: &str,
        clock: &str,
    ) -> VlogResult<Runtime> {
        Self::with_policy(name, source, top, clock, EnginePolicy::Interpreter)
    }

    /// Creates a runtime with an explicit software-engine selection policy.
    ///
    /// Under [`EnginePolicy::Auto`] the program starts on the compiled engine
    /// when the design is compilable and on the interpreter otherwise; under
    /// [`EnginePolicy::Compiled`] an uncompilable design is an error.
    ///
    /// # Errors
    ///
    /// Returns an error if the source fails to parse or elaborate, or if the
    /// policy requires the compiled engine and lowering fails.
    pub fn with_policy(
        name: impl Into<String>,
        source: &str,
        top: &str,
        clock: &str,
        policy: EnginePolicy,
    ) -> VlogResult<Runtime> {
        let design = synergy_vlog::compile(source, top)?;
        let software = Device::software();
        let tier = CompiledTier::from_env();
        let opt_level = OptLevel::from_env();
        let mut telem = Mutex::new(Telemetry::default());
        let mut compiled = None;
        let mut fallback: Option<String> = None;
        let (engine, device): (Box<dyn Engine>, Device) = match policy {
            EnginePolicy::Interpreter => (
                Box::new(SoftwareEngine::new(design.clone(), clock)),
                software,
            ),
            EnginePolicy::Compiled | EnginePolicy::Auto => {
                match synergy_codegen::compile(&design) {
                    Ok(prog) => {
                        compiled = Some(prog.clone());
                        let prog = optimize_for_engine(
                            prog,
                            opt_level,
                            telem.get_mut().unwrap_or_else(|e| e.into_inner()),
                            0,
                        );
                        (
                            Box::new(CompiledEngine::from_program_with_tier(prog, clock, tier)?)
                                as Box<dyn Engine>,
                            Device::compiled(),
                        )
                    }
                    // Auto falls back to the interpreter only for designs
                    // outside the compilable envelope; internal lowering
                    // failures (and any failure under the strict policy)
                    // surface to the caller.
                    Err(VlogError::Unsupported(reason)) if policy == EnginePolicy::Auto => {
                        fallback = Some(reason);
                        (
                            Box::new(SoftwareEngine::new(design.clone(), clock)),
                            software,
                        )
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        if let Some(reason) = fallback {
            let t = telem.get_mut().unwrap_or_else(|e| e.into_inner());
            t.registry.counter_add(
                Namespace::Det,
                "runtime_engine_fallbacks_total",
                &[("reason", reason.as_str())],
                1,
            );
            t.recorder.record(0, "engine_fallback", reason);
        }
        Ok(Runtime {
            name: name.into(),
            source: source.to_string(),
            top: top.to_string(),
            clock: clock.to_string(),
            design,
            engine,
            env: BufferEnv::new(),
            clock_hz: device.max_clock_hz,
            transport_ns: device.transport.request_latency_ns(),
            sim: SimClock::new(),
            ticks: 0,
            profiler: Profiler::default(),
            checkpoints: BTreeMap::new(),
            transformed: None,
            transform_options: TransformOptions::default(),
            compiled,
            policy,
            tier,
            opt_level,
            finished: None,
            telem,
        })
    }

    /// Locks the telemetry block, shrugging off poison (telemetry must never
    /// take the runtime down with it).
    fn telem_lock(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        self.telem.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A point-in-time clone of this runtime's metrics registry.
    ///
    /// Deterministic-namespace contents depend only on the program and its
    /// inputs; see the `synergy_telemetry` crate docs for the contract.
    pub fn metrics(&self) -> synergy_telemetry::Registry {
        self.telem_lock().registry.clone()
    }

    /// The flight recorder's current contents (oldest event first), one
    /// `#seq @tick span: detail` line per event. Empty when telemetry is
    /// disabled or nothing noteworthy has happened.
    pub fn flight_dump(&self) -> String {
        self.telem_lock().recorder.dump()
    }

    /// Records a trace event into this runtime's flight recorder, stamped
    /// with the current virtual tick. Used by the hypervisor to interleave
    /// scheduling decisions with the runtime's own events.
    pub fn record_event(&self, span: &'static str, detail: String) {
        let ticks = self.ticks;
        self.telem_lock().recorder.record(ticks, span, detail);
    }

    /// The software-engine selection policy this runtime was created with.
    pub fn engine_policy(&self) -> EnginePolicy {
        self.policy
    }

    /// The compiled-engine tier new compiled engines will use.
    pub fn compiled_tier_policy(&self) -> CompiledTier {
        self.tier
    }

    /// The tier the *currently running* compiled engine executes on
    /// (`None` when not on the compiled engine).
    pub fn compiled_tier(&self) -> Option<CompiledTier> {
        match self.mode() {
            ExecMode::Compiled => Some(self.engine_tier()),
            _ => None,
        }
    }

    fn engine_tier(&self) -> CompiledTier {
        self.engine
            .compiled_tier()
            .unwrap_or(CompiledTier::RegAlloc)
    }

    /// Selects the compiled-engine tier. Takes effect immediately when the
    /// program is running on the compiled engine (state migrates across via
    /// a snapshot, like any engine hop) and applies to future migrations
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors from the re-migration; the
    /// current engine is left untouched on failure.
    pub fn set_compiled_tier(&mut self, tier: CompiledTier) -> VlogResult<()> {
        self.tier = tier;
        if self.mode() == ExecMode::Compiled && self.engine_tier() != tier {
            self.migrate_to_compiled()?;
        }
        Ok(())
    }

    /// The optimization level future compiled engines are built at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Selects the netlist optimization level. Takes effect immediately when
    /// the program is running on the compiled engine (state migrates across
    /// via a snapshot, exactly like a tier change) and applies to future
    /// migrations otherwise. `O0` is the escape hatch that runs the program
    /// exactly as lowered.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors from the re-migration; the
    /// current engine is left untouched on failure.
    pub fn set_opt_level(&mut self, level: OptLevel) -> VlogResult<()> {
        if self.opt_level == level {
            return Ok(());
        }
        self.opt_level = level;
        if self.mode() == ExecMode::Compiled {
            self.migrate_to_compiled()?;
        }
        Ok(())
    }

    /// The application name this runtime was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program's source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The top module name.
    pub fn top(&self) -> &str {
        &self.top
    }

    /// The elaborated (untransformed) design.
    pub fn design(&self) -> &ElabModule {
        &self.design
    }

    /// Current execution mode.
    pub fn mode(&self) -> ExecMode {
        match self.engine.kind() {
            EngineKind::Software => ExecMode::Software,
            EngineKind::Compiled => ExecMode::Compiled,
            EngineKind::Hardware { device } => ExecMode::Hardware(device),
        }
    }

    /// Exit code if the program has finished.
    pub fn finished(&self) -> Option<u32> {
        self.finished.or_else(|| self.engine.finished())
    }

    /// Cumulative virtual clock ticks executed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Simulated wall-clock time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.sim.now_secs()
    }

    /// Simulated wall-clock time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.sim.now_ns()
    }

    /// Advances simulated time without executing (used when an instance is
    /// descheduled by the hypervisor, §4.3).
    pub fn idle_for_ns(&mut self, ns: u64) {
        self.sim.advance_ns(ns);
    }

    /// The throughput profile recorded so far.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Named state checkpoints captured by `$save` or [`Runtime::save`].
    pub fn checkpoints(&self) -> &BTreeMap<String, StateSnapshot> {
        &self.checkpoints
    }

    /// The transformed design, if hardware compilation has happened.
    pub fn transformed(&self) -> Option<&Transformed> {
        self.transformed.as_ref()
    }

    /// Overrides the transformation options (e.g. the Cascade baseline).
    pub fn set_transform_options(&mut self, options: TransformOptions) {
        self.transform_options = options;
    }

    /// Reads a program variable from the running engine.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get(&self, var: &str) -> VlogResult<Value> {
        self.engine.get(var)
    }

    /// Reads a scalar program variable as `Bits`.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn get_bits(&self, var: &str) -> VlogResult<Bits> {
        Ok(self.engine.get(var)?.as_scalar().clone())
    }

    /// Writes a scalar program variable (typically a top-level input).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    pub fn set(&mut self, var: &str, value: Bits) -> VlogResult<()> {
        self.engine.set(var, value)
    }

    /// Registers an in-memory input file that the program can `$fopen`.
    pub fn add_file(&mut self, path: impl Into<String>, data: Vec<u64>) {
        self.env.add_file(path, data);
    }

    /// Runs `n` virtual clock ticks (or fewer if the program finishes), advancing
    /// simulated time and the profiler, and returning any runtime events raised.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors.
    pub fn run_ticks(&mut self, n: u64) -> VlogResult<(RunReport, Vec<RuntimeEvent>)> {
        let before = self.engine.exec_counters();
        let result = self.run_ticks_inner(n);
        self.note_run(&before, &result);
        result
    }

    fn run_ticks_inner(&mut self, n: u64) -> VlogResult<(RunReport, Vec<RuntimeEvent>)> {
        let mut report = RunReport::default();
        let mut events = Vec::new();
        for _ in 0..n {
            if self.finished().is_some() {
                break;
            }
            let tick: TickReport = self.engine.tick(&mut self.env)?;
            self.ticks += 1;
            report.ticks += 1;
            report.native_cycles += tick.native_cycles;
            report.abi_requests += tick.abi_requests;
            report.tasks_handled += tick.tasks_handled;
            let elapsed = self.tick_latency_ns(&tick);
            self.sim.advance_ns(elapsed);
            report.elapsed_ns += elapsed;

            for effect in self.engine.take_effects() {
                match effect {
                    TaskEffect::Save(tag) => {
                        let tag = if tag.is_empty() {
                            "default".to_string()
                        } else {
                            tag
                        };
                        let snapshot = self.engine.save_state();
                        self.sim.advance_ns(self.state_transfer_ns(&snapshot));
                        self.checkpoints.insert(tag.clone(), snapshot);
                        events.push(RuntimeEvent::Saved(tag));
                    }
                    TaskEffect::Restart(tag) => {
                        let tag = if tag.is_empty() {
                            "default".to_string()
                        } else {
                            tag
                        };
                        if let Some(snapshot) = self.checkpoints.get(&tag).cloned() {
                            self.sim.advance_ns(self.state_transfer_ns(&snapshot));
                            self.engine.restore_state(&snapshot);
                        }
                        events.push(RuntimeEvent::Restarted(tag));
                    }
                    TaskEffect::Yield => events.push(RuntimeEvent::Yielded),
                    TaskEffect::Finish(code) => {
                        self.finished = Some(code);
                        events.push(RuntimeEvent::Finished(code));
                    }
                    TaskEffect::Continue => {}
                }
            }
        }
        self.profiler.record(self.sim.now_secs(), self.ticks);
        Ok((report, events))
    }

    /// The telemetry epilogue of [`Runtime::run_ticks`] — the single
    /// instrumentation path for per-run metrics. Counts ticks (by resident
    /// engine tier), tasks, events, and engine-internal work deltas into the
    /// deterministic namespace, folds the profiler's newest virtual-frequency
    /// sample into the `runtime_virtual_hz` histogram, and leaves a flight
    /// recorder event (with fault detail) behind on engine errors.
    fn note_run(
        &mut self,
        before: &crate::engine::EngineCounters,
        result: &VlogResult<(RunReport, Vec<RuntimeEvent>)>,
    ) {
        if !synergy_telemetry::enabled() {
            return;
        }
        let engine = self.engine_label();
        let after = self.engine.exec_counters();
        let fault = self.engine.fault_detail();
        let sample_hz = self.profiler.samples.last().map(|s| s.virtual_hz);
        let ticks = self.ticks;
        let t = self.telem.get_mut().unwrap_or_else(|e| e.into_inner());
        let r = &mut t.registry;
        // Engines migrate only *between* run_ticks calls, so a simple
        // saturating delta per counter is exact; a migration mid-lifetime
        // resets the engine's counters and the saturation floors the delta
        // at zero rather than going negative.
        let deltas = [
            (
                "runtime_settle_iters_total",
                after.settle_iters.saturating_sub(before.settle_iters),
            ),
            (
                "runtime_worklist_drains_total",
                after.worklist_drains.saturating_sub(before.worklist_drains),
            ),
            (
                "runtime_guard_epoch_skips_total",
                after
                    .guard_epoch_skips
                    .saturating_sub(before.guard_epoch_skips),
            ),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                r.counter_add(Namespace::Det, name, &[], delta);
            }
        }
        if after.arena_regs > 0 {
            r.gauge_set(
                Namespace::Det,
                "runtime_arena_regs",
                &[],
                after.arena_regs as i64,
            );
        }
        match result {
            Ok((report, events)) => {
                r.counter_add(
                    Namespace::Det,
                    "runtime_ticks_total",
                    &[("engine", engine)],
                    report.ticks,
                );
                r.counter_add(
                    Namespace::Det,
                    "runtime_tasks_total",
                    &[],
                    report.tasks_handled,
                );
                r.counter_add(
                    Namespace::Det,
                    "runtime_events_total",
                    &[],
                    events.len() as u64,
                );
                if let Some(hz) = sample_hz {
                    r.observe(
                        Namespace::Det,
                        "runtime_virtual_hz",
                        &[],
                        POW2_BUCKETS,
                        hz as u64,
                    );
                }
            }
            Err(e) => {
                r.counter_add(
                    Namespace::Det,
                    "runtime_engine_errors_total",
                    &[("engine", engine)],
                    1,
                );
                let detail = match &fault {
                    Some(f) => format!("{} [{}]", e, f),
                    None => e.to_string(),
                };
                t.recorder.record(ticks, "engine_error", detail);
            }
        }
    }

    /// The label value describing where the program currently executes, at
    /// compiled-tier granularity.
    fn engine_label(&self) -> &'static str {
        match self.engine.kind() {
            EngineKind::Software => "software",
            EngineKind::Compiled => match self.engine_tier() {
                CompiledTier::Stack => "compiled_stack",
                CompiledTier::RegAlloc => "compiled_regalloc",
            },
            EngineKind::Hardware { .. } => "hardware",
        }
    }

    /// Runs until the program finishes or `max_ticks` elapse.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors.
    pub fn run_to_completion(&mut self, max_ticks: u64) -> VlogResult<RunReport> {
        let mut total = RunReport::default();
        let mut remaining = max_ticks;
        while remaining > 0 && self.finished().is_none() {
            let chunk = remaining.min(1024);
            let (r, _) = self.run_ticks(chunk)?;
            total.ticks += r.ticks;
            total.native_cycles += r.native_cycles;
            total.abi_requests += r.abi_requests;
            total.tasks_handled += r.tasks_handled;
            total.elapsed_ns += r.elapsed_ns;
            remaining -= chunk;
        }
        Ok(total)
    }

    fn tick_latency_ns(&self, tick: &TickReport) -> u64 {
        if self.clock_hz == 0 {
            return 0;
        }
        let cycle_ns = tick.native_cycles as u128 * 1_000_000_000u128 / self.clock_hz as u128;
        // Batch-style programs run autonomously in hardware: the runtime's
        // clock-toggle requests are batched by adaptive refinement, so only task
        // traps pay the host<->fabric transport latency (a request and a reply
        // each). This matches §4.1's "fewer than one ABI request per second" for
        // batch applications while IO-bound programs pay per interaction.
        cycle_ns as u64 + tick.tasks_handled * 2 * self.transport_ns
    }

    fn state_transfer_ns(&self, snapshot: &StateSnapshot) -> u64 {
        // One get/set request per 64-bit word of state plus a fixed handshake.
        let words = (snapshot.total_bits() as u64).div_ceil(64);
        words * self.transport_ns + 10 * self.transport_ns
    }

    /// Captures the program state *without* side effects: no simulated-time
    /// advance, no checkpoint entry. Used by differential harnesses to compare
    /// tenant state across scheduling policies without perturbing the run.
    pub fn peek_state(&self) -> StateSnapshot {
        self.engine.save_state()
    }

    /// Captures the program state under a named tag (the scripted form of `$save`).
    pub fn save(&mut self, tag: impl Into<String>) -> StateSnapshot {
        let snapshot = self.engine.save_state();
        self.sim.advance_ns(self.state_transfer_ns(&snapshot));
        self.checkpoints.insert(tag.into(), snapshot.clone());
        snapshot
    }

    /// Restores program state from a snapshot (the scripted form of `$restart`).
    pub fn restore(&mut self, snapshot: &StateSnapshot) {
        self.sim.advance_ns(self.state_transfer_ns(snapshot));
        self.engine.restore_state(snapshot);
        self.finished = None;
    }

    /// Transforms and compiles the program for `device` (priming or reusing the
    /// bitstream cache), migrates state onto a hardware engine, and continues
    /// execution there. Returns the simulated latency of the transition.
    ///
    /// # Errors
    ///
    /// Returns an error if the transformation fails.
    pub fn migrate_to_hardware(
        &mut self,
        device: &Device,
        cache: &BitstreamCache,
    ) -> VlogResult<u64> {
        self.seat_on_hardware(device, cache, false)
    }

    /// Re-seats the program on a hardware engine *without* modelling any
    /// migration latency or advancing simulated time: the checkpoint-restore
    /// path. A restore is not a simulated event — the checkpoint already
    /// contains the pre-capture timeline (including the original deployment
    /// latency), so re-homing must reproduce it exactly, even onto a
    /// different device type.
    ///
    /// # Errors
    ///
    /// Returns an error if the transformation fails.
    pub fn rehome_hardware(&mut self, device: &Device, cache: &BitstreamCache) -> VlogResult<()> {
        self.seat_on_hardware(device, cache, true).map(|_| ())
    }

    fn seat_on_hardware(
        &mut self,
        device: &Device,
        cache: &BitstreamCache,
        quiet: bool,
    ) -> VlogResult<u64> {
        let transformed = match &self.transformed {
            Some(t) => t.clone(),
            None => {
                let t = transform(&self.design, self.transform_options)?;
                self.transformed = Some(t.clone());
                t
            }
        };
        let options = SynthOptions::synergy(
            device,
            transformed.state.captured_bits() as u64,
            transformed.state.vars.len() as u64,
        );
        let outcome = cache.compile(&transformed.source, &transformed.elab, device, options);
        let mut latency = outcome.latency_ns + device.reconfig_latency_ns;

        // Quiesce, capture state, swap engines, restore state (§3.5). The
        // program's initials already ran on the outgoing engine (or are
        // still pending, for a never-ticked runtime); carry that status so
        // the fresh engine neither replays nor skips them.
        let initials_run = self.engine.initials_run();
        let snapshot = self.engine.save_state();
        latency += self.state_transfer_ns(&snapshot);
        let mut hw = HardwareEngine::new(transformed, device.name.clone(), self.clock.clone());
        hw.restore_state(&snapshot);
        if initials_run {
            hw.mark_initials_run();
        }
        self.engine = Box::new(hw);
        self.clock_hz = outcome.bitstream.report.achieved_hz;
        self.transport_ns = device.transport.request_latency_ns();
        if quiet {
            return Ok(0);
        }
        self.sim.advance_ns(latency);
        Ok(latency)
    }

    /// Moves execution onto the compiled software engine (the middle rung of
    /// the interpret → compiled → hardware ladder), carrying state across via
    /// a snapshot. Returns the simulated latency of the transition.
    ///
    /// # Errors
    ///
    /// Returns [`synergy_vlog::VlogError::Unsupported`] when the design is
    /// outside the compilable envelope; the current engine is left untouched,
    /// so callers can simply keep interpreting.
    pub fn migrate_to_compiled(&mut self) -> VlogResult<u64> {
        let program = match &self.compiled {
            Some(p) => p.clone(),
            None => match synergy_codegen::compile(&self.design) {
                Ok(p) => {
                    self.compiled = Some(p.clone());
                    p
                }
                Err(e) => {
                    if let VlogError::Unsupported(reason) = &e {
                        let ticks = self.ticks;
                        let t = self.telem.get_mut().unwrap_or_else(|p| p.into_inner());
                        t.registry.counter_add(
                            Namespace::Det,
                            "runtime_engine_fallbacks_total",
                            &[("reason", reason.as_str())],
                            1,
                        );
                        t.recorder.record(ticks, "engine_fallback", reason.clone());
                    }
                    return Err(e);
                }
            },
        };
        let program = {
            let ticks = self.ticks;
            let level = self.opt_level;
            let telem = self.telem.get_mut().unwrap_or_else(|p| p.into_inner());
            optimize_for_engine(program, level, telem, ticks)
        };
        let mut compiled = CompiledEngine::from_program_with_tier(program, &self.clock, self.tier)?;
        let initials_run = self.engine.initials_run();
        let snapshot = self.engine.save_state();
        let latency = self.state_transfer_ns(&snapshot);
        compiled.restore_state(&snapshot);
        if initials_run {
            compiled.mark_initials_run();
        }
        self.engine = Box::new(compiled);
        let device = Device::compiled();
        self.clock_hz = device.max_clock_hz;
        self.transport_ns = device.transport.request_latency_ns();
        self.sim.advance_ns(latency);
        Ok(latency)
    }

    /// Moves execution back to the software engine (used while the fabric is being
    /// reconfigured, §4.2). Returns the simulated latency of the transition.
    pub fn migrate_to_software(&mut self) -> u64 {
        let initials_run = self.engine.initials_run();
        let snapshot = self.engine.save_state();
        let latency = self.state_transfer_ns(&snapshot);
        let software = Device::software();
        let mut sw = SoftwareEngine::new(self.design.clone(), self.clock.clone());
        sw.restore_state(&snapshot);
        if initials_run {
            sw.mark_initials_run();
        }
        self.engine = Box::new(sw);
        self.clock_hz = software.max_clock_hz;
        self.transport_ns = software.transport.request_latency_ns();
        self.sim.advance_ns(latency);
        latency
    }

    /// Overrides the effective fabric clock (used by the hypervisor when the global
    /// clock changes because of co-tenants, §4.1 / Figure 12).
    pub fn set_clock_hz(&mut self, clock_hz: u64) {
        if matches!(self.mode(), ExecMode::Hardware(_)) {
            self.clock_hz = clock_hz;
        }
    }

    /// The effective clock the engine is currently running at.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Virtual clock frequency achieved over the program's lifetime, in Hz.
    pub fn virtual_freq_hz(&self) -> f64 {
        let t = self.sim.now_secs();
        if t <= 0.0 {
            0.0
        } else {
            self.ticks as f64 / t
        }
    }
}

// The hypervisor's parallel scheduler ships whole `Runtime`s to worker
// threads for the duration of a round, so the execution stack must be `Send`
// end-to-end (engines via the `Engine: Send` supertrait, plus the
// environment, profiler, and checkpoint store). Enforced at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Runtime>();
};

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("name", &self.name)
            .field("top", &self.top)
            .field("mode", &self.mode())
            .field("ticks", &self.ticks)
            .field("time_s", &self.now_secs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [31:0] out);
            reg [31:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    const FILE_SUM: &str = r#"
        module M(input wire clock);
            integer fd = $fopen("data.bin");
            reg [31:0] r = 0;
            reg [127:0] sum = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if ($feof(fd)) begin
                    $display(sum);
                    $finish(0);
                end else
                    sum <= sum + r;
            end
        endmodule
    "#;

    #[test]
    fn starts_in_software_and_counts() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        assert_eq!(rt.mode(), ExecMode::Software);
        rt.run_ticks(25).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 25);
        assert_eq!(rt.ticks(), 25);
        assert!(rt.now_secs() > 0.0);
    }

    #[test]
    fn auto_policy_starts_on_the_compiled_engine() {
        let mut rt =
            Runtime::with_policy("counter", COUNTER, "Counter", "clock", EnginePolicy::Auto)
                .unwrap();
        assert_eq!(rt.mode(), ExecMode::Compiled);
        assert_eq!(rt.engine_policy(), EnginePolicy::Auto);
        rt.run_ticks(25).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 25);
        // The compiled engine models a faster software clock than the
        // interpreter.
        assert!(rt.clock_hz() > Device::software().max_clock_hz);
    }

    #[test]
    fn compiled_tier_knob_switches_tiers_with_state_intact() {
        let mut rt =
            Runtime::with_policy("counter", COUNTER, "Counter", "clock", EnginePolicy::Auto)
                .unwrap();
        // The regalloc tier is the default for the compiled engine.
        assert_eq!(rt.compiled_tier(), Some(CompiledTier::RegAlloc));
        rt.run_ticks(9).unwrap();

        // Dropping to the stack tier migrates state across, like any other
        // engine hop, and execution continues bit-identically.
        rt.set_compiled_tier(CompiledTier::Stack).unwrap();
        assert_eq!(rt.mode(), ExecMode::Compiled);
        assert_eq!(rt.compiled_tier(), Some(CompiledTier::Stack));
        rt.run_ticks(4).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 13);

        // And back up.
        rt.set_compiled_tier(CompiledTier::RegAlloc).unwrap();
        assert_eq!(rt.compiled_tier(), Some(CompiledTier::RegAlloc));
        rt.run_ticks(4).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 17);

        // On a non-compiled engine the knob only applies to future hops.
        let mut sw = Runtime::new("sw", COUNTER, "Counter", "clock").unwrap();
        sw.set_compiled_tier(CompiledTier::Stack).unwrap();
        assert_eq!(sw.compiled_tier(), None);
        assert_eq!(sw.compiled_tier_policy(), CompiledTier::Stack);
        sw.migrate_to_compiled().unwrap();
        assert_eq!(sw.compiled_tier(), Some(CompiledTier::Stack));
    }

    #[test]
    fn auto_policy_falls_back_to_the_interpreter() {
        // Multiply-driven nets are outside the compilable envelope.
        let src = r#"module M(input wire clock, output wire [7:0] o);
                         wire [7:0] a = 1;
                         assign o = a;
                         assign o = a + 1;
                     endmodule"#;
        let rt = Runtime::with_policy("m", src, "M", "clock", EnginePolicy::Auto).unwrap();
        assert_eq!(rt.mode(), ExecMode::Software);
        assert!(
            Runtime::with_policy("m", src, "M", "clock", EnginePolicy::Compiled).is_err(),
            "strict compiled policy must surface the lowering error"
        );
    }

    #[test]
    fn migrate_to_compiled_preserves_state_and_speeds_up() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        rt.run_ticks(10).unwrap();
        let (slow, _) = rt.run_ticks(100).unwrap();
        let latency = rt.migrate_to_compiled().unwrap();
        assert!(latency > 0);
        assert_eq!(rt.mode(), ExecMode::Compiled);
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 110);
        let (fast, _) = rt.run_ticks(100).unwrap();
        assert!(fast.elapsed_ns < slow.elapsed_ns);
        // Onward to hardware, and back down to the interpreter.
        let cache = BitstreamCache::new();
        rt.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        rt.run_ticks(5).unwrap();
        rt.migrate_to_software();
        assert_eq!(rt.mode(), ExecMode::Software);
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 215);
    }

    #[test]
    fn compiled_runtime_runs_streaming_programs() {
        let mut rt =
            Runtime::with_policy("sum", FILE_SUM, "M", "clock", EnginePolicy::Auto).unwrap();
        rt.add_file("data.bin", vec![1, 2, 3, 4, 5]);
        assert_eq!(rt.mode(), ExecMode::Compiled);
        rt.run_to_completion(100).unwrap();
        assert_eq!(rt.finished(), Some(0));
        assert_eq!(rt.get_bits("sum").unwrap().to_u64(), 15);
        assert!(rt.env.output_text().contains("15"));
    }

    #[test]
    fn migrates_to_hardware_and_keeps_state() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        rt.run_ticks(10).unwrap();
        let cache = BitstreamCache::new();
        let latency = rt.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        assert!(latency > 0);
        assert_eq!(rt.mode(), ExecMode::Hardware("f1".into()));
        rt.run_ticks(10).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 20);
        // Hardware execution runs the virtual clock much faster than software.
        assert!(rt.clock_hz() > Device::software().max_clock_hz);
    }

    #[test]
    fn hardware_is_faster_than_software_in_virtual_time() {
        let mut sw = Runtime::new("sw", COUNTER, "Counter", "clock").unwrap();
        let (sw_report, _) = sw.run_ticks(100).unwrap();

        let mut hw = Runtime::new("hw", COUNTER, "Counter", "clock").unwrap();
        let cache = BitstreamCache::new();
        hw.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        let (hw_report, _) = hw.run_ticks(100).unwrap();

        assert!(hw_report.elapsed_ns < sw_report.elapsed_ns);
    }

    #[test]
    fn file_sum_program_completes_in_hardware() {
        let mut rt = Runtime::new("sum", FILE_SUM, "M", "clock").unwrap();
        rt.add_file("data.bin", vec![1, 2, 3, 4, 5]);
        // Run a couple of ticks in software first so $fopen executes there.
        rt.run_ticks(2).unwrap();
        let cache = BitstreamCache::new();
        rt.migrate_to_hardware(&Device::de10(), &cache).unwrap();
        rt.run_to_completion(100).unwrap();
        assert_eq!(rt.finished(), Some(0));
        assert_eq!(rt.get_bits("sum").unwrap().to_u64(), 15);
        assert!(rt.env.output_text().contains("15"));
    }

    #[test]
    fn save_and_restore_round_trip_across_engines() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        rt.run_ticks(7).unwrap();
        let snapshot = rt.save("checkpoint");
        assert_eq!(snapshot.values["count"].as_scalar().to_u64(), 7);

        // Continue, then roll back.
        rt.run_ticks(5).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 12);
        let saved = rt.checkpoints()["checkpoint"].clone();
        rt.restore(&saved);
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 7);

        // The same snapshot restores into a different runtime on different hardware
        // (the Figure 9 suspend-and-resume flow).
        let mut other = Runtime::new("counter2", COUNTER, "Counter", "clock").unwrap();
        let cache = BitstreamCache::new();
        other.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        other.restore(&saved);
        other.run_ticks(3).unwrap();
        assert_eq!(other.get_bits("count").unwrap().to_u64(), 10);
    }

    #[test]
    fn dollar_save_creates_checkpoints() {
        let src = r#"module M(input wire clock, input wire do_save);
                         reg [31:0] n = 0;
                         always @(posedge clock) begin
                             if (do_save) $save("ckpt");
                             n <= n + 1;
                         end
                     endmodule"#;
        let mut rt = Runtime::new("saver", src, "M", "clock").unwrap();
        rt.run_ticks(3).unwrap();
        rt.set("do_save", Bits::from_u64(1, 1)).unwrap();
        let (_, events) = rt.run_ticks(1).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, RuntimeEvent::Saved(t) if t == "ckpt")));
        assert!(rt.checkpoints().contains_key("ckpt"));
    }

    #[test]
    fn migrating_back_to_software_preserves_state() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        let cache = BitstreamCache::new();
        rt.migrate_to_hardware(&Device::de10(), &cache).unwrap();
        rt.run_ticks(6).unwrap();
        rt.migrate_to_software();
        assert_eq!(rt.mode(), ExecMode::Software);
        rt.run_ticks(4).unwrap();
        assert_eq!(rt.get_bits("count").unwrap().to_u64(), 10);
    }

    #[test]
    fn profiler_records_throughput_samples() {
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        rt.run_ticks(10).unwrap();
        rt.run_ticks(10).unwrap();
        let samples = rt.profiler().samples();
        assert_eq!(samples.len(), 2);
        assert!(samples[1].ticks > samples[0].ticks);
        assert!(rt.profiler().peak_virtual_hz() > 0.0);
        assert!(rt.virtual_freq_hz() > 0.0);
    }

    #[test]
    fn second_migration_reuses_cached_bitstream() {
        let cache = BitstreamCache::new();
        let device = Device::f1();
        let mut a = Runtime::new("a", COUNTER, "Counter", "clock").unwrap();
        let first = a.migrate_to_hardware(&device, &cache).unwrap();
        let mut b = Runtime::new("b", COUNTER, "Counter", "clock").unwrap();
        let second = b.migrate_to_hardware(&device, &cache).unwrap();
        assert!(second < first, "cache hit avoids the synthesis latency");
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clock_override_changes_virtual_time_accounting() {
        let cache = BitstreamCache::new();
        let mut rt = Runtime::new("counter", COUNTER, "Counter", "clock").unwrap();
        rt.migrate_to_hardware(&Device::f1(), &cache).unwrap();
        let (fast, _) = rt.run_ticks(50).unwrap();
        rt.set_clock_hz(rt.clock_hz() / 2);
        let (slow, _) = rt.run_ticks(50).unwrap();
        assert!(slow.elapsed_ns > fast.elapsed_ns);
    }
}
