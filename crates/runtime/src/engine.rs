//! Engines: the unit of execution behind the Cascade/SYNERGY ABI (§2.1).
//!
//! A sub-program's state is represented by an *engine*. Engines start as
//! low-performance software-simulated engines ([`SoftwareEngine`]) and are replaced
//! over time by high-performance FPGA-resident engines ([`HardwareEngine`]). Both
//! satisfy the same constrained ABI — `get`/`set` for inputs, outputs and program
//! variables, and a virtual-clock `tick` that runs `evaluate`/`update` until the
//! logical tick completes — which is what lets the runtime move programs back and
//! forth mid-execution.

use serde::{Deserialize, Serialize};
use synergy_codegen::{CompiledSim, Tier};
use synergy_interp::{Interpreter, StateSnapshot, SystemEnv, TaskEffect, Value};
use synergy_transform::{Transformed, TASK_NONE};
use synergy_vlog::ast::{Expr, LValue, SystemTask, TaskKind};
use synergy_vlog::elaborate::ElabModule;
use synergy_vlog::{Bits, VlogError, VlogResult};

/// Where an engine executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Software interpretation inside the runtime process.
    Software,
    /// Compiled software execution (levelized netlist + bytecode) inside the
    /// runtime process.
    Compiled,
    /// FPGA-resident execution on the named device (`de10`, `f1`).
    Hardware {
        /// Device name the engine is resident on.
        device: String,
    },
}

impl EngineKind {
    /// `true` for hardware-resident engines.
    pub fn is_hardware(&self) -> bool {
        matches!(self, EngineKind::Hardware { .. })
    }
}

/// Statistics from advancing an engine by one virtual clock tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TickReport {
    /// Native device cycles consumed (always ≥ 3 for hardware engines, modelling
    /// the clock-toggle / evaluate / latch phases of §6.4).
    pub native_cycles: u64,
    /// ABI requests exchanged with the runtime (get/set/evaluate/update and task
    /// acknowledgements).
    pub abi_requests: u64,
    /// Unsynthesizable tasks that trapped to the runtime during the tick.
    pub tasks_handled: u64,
}

/// The engine ABI shared by software and hardware execution.
///
/// `Send` is a supertrait: the hypervisor's parallel scheduler moves engines
/// (inside their `Runtime`s) across worker threads between rounds, so every
/// engine implementation must be transferable. All three engines are plain
/// owned data — no `Rc`, no interior mutability — which the assertions at the
/// bottom of this file enforce at compile time.
pub trait Engine: Send {
    /// Where the engine runs.
    fn kind(&self) -> EngineKind;

    /// Reads a program variable.
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    fn get(&self, var: &str) -> VlogResult<Value>;

    /// Writes a scalar program variable (used for inputs and state restore).
    ///
    /// # Errors
    ///
    /// Returns an error if the variable does not exist.
    fn set(&mut self, var: &str, value: Bits) -> VlogResult<()>;

    /// Advances one virtual clock tick, servicing unsynthesizable tasks through
    /// `env`.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation fails (combinational loops, malformed
    /// programs).
    fn tick(&mut self, env: &mut dyn SystemEnv) -> VlogResult<TickReport>;

    /// Captures the program's architectural state.
    fn save_state(&self) -> StateSnapshot;

    /// Restores a previously captured state snapshot.
    fn restore_state(&mut self, snapshot: &StateSnapshot);

    /// Exit code if the program has executed `$finish`.
    fn finished(&self) -> Option<u32>;

    /// Drains control-flow effects ($save/$restart/$yield/$finish) raised since the
    /// last call.
    fn take_effects(&mut self) -> Vec<TaskEffect>;

    /// Whether the engine has already executed the program's `initial`
    /// blocks (they run lazily, on the first tick).
    fn initials_run(&self) -> bool;

    /// Marks `initial` blocks as executed *without* running them. The
    /// runtime calls this when it restores captured state into a freshly
    /// constructed engine (migration and checkpoint restore): the program
    /// already ran its initials — including their environment side effects,
    /// such as `$fopen` — so replaying them would re-open streams and
    /// corrupt the resumed run.
    fn mark_initials_run(&mut self);

    /// The compiled-engine execution tier, if this engine is the compiled
    /// engine.
    fn compiled_tier(&self) -> Option<Tier> {
        None
    }

    /// Cumulative executor-internal telemetry counters. The runtime diffs
    /// these around each `run_ticks` call; engines that track nothing report
    /// zeros. Counters are observability-only — never part of
    /// `save_state`/`restore_state` or any wire format, so they reset when a
    /// workload migrates between engines.
    fn exec_counters(&self) -> EngineCounters {
        EngineCounters::default()
    }

    /// Detail for the most recent settle-cap failure, if the engine recorded
    /// one: the non-blocking targets that never converged. The error message
    /// itself is engine-identical by contract; this side channel is what lets
    /// postmortems name the failing always-block site.
    fn fault_detail(&self) -> Option<String> {
        None
    }
}

/// Cumulative executor-internal telemetry counters, engine-agnostic.
///
/// All four fields count *deterministic work performed* for a given program
/// and input — never host time — so the deltas the runtime derives from them
/// are safe to publish in the deterministic metrics namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Evaluate/update rounds executed while settling the design.
    pub settle_iters: u64,
    /// Combinational worklist nodes drained during propagation (0 on the
    /// interpreter, which has no worklist).
    pub worklist_drains: u64,
    /// Guard scans skipped by the regalloc tier's write-epoch check.
    pub guard_epoch_skips: u64,
    /// Register-arena footprint of the regalloc tier (a size, not a rate;
    /// 0 elsewhere).
    pub arena_regs: u64,
}

// ------------------------------------------------------------------ software

/// The software engine: direct interpretation of the original program.
#[derive(Debug, Clone)]
pub struct SoftwareEngine {
    interp: Interpreter,
    clock: String,
}

impl SoftwareEngine {
    /// Creates a software engine for an elaborated design driven by the named clock
    /// input.
    pub fn new(design: ElabModule, clock: impl Into<String>) -> Self {
        SoftwareEngine {
            interp: Interpreter::new(design),
            clock: clock.into(),
        }
    }

    /// The underlying interpreter (used by tests and the REPL).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interp
    }
}

impl Engine for SoftwareEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Software
    }

    fn exec_counters(&self) -> EngineCounters {
        EngineCounters {
            settle_iters: self.interp.settle_iters(),
            ..EngineCounters::default()
        }
    }

    fn fault_detail(&self) -> Option<String> {
        self.interp.fault_detail().map(str::to_owned)
    }

    fn get(&self, var: &str) -> VlogResult<Value> {
        self.interp.get(var).cloned()
    }

    fn set(&mut self, var: &str, value: Bits) -> VlogResult<()> {
        self.interp.set(var, value)
    }

    fn tick(&mut self, env: &mut dyn SystemEnv) -> VlogResult<TickReport> {
        if self.finished().is_some() {
            return Ok(TickReport::default());
        }
        self.interp.tick(&self.clock, env)?;
        Ok(TickReport {
            native_cycles: 1,
            abi_requests: 2,
            tasks_handled: 0,
        })
    }

    fn save_state(&self) -> StateSnapshot {
        self.interp.save_state()
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) {
        self.interp.restore_state(snapshot);
    }

    fn finished(&self) -> Option<u32> {
        self.interp.finished()
    }

    fn take_effects(&mut self) -> Vec<TaskEffect> {
        self.interp.take_effects()
    }

    fn initials_run(&self) -> bool {
        self.interp.initials_run()
    }

    fn mark_initials_run(&mut self) {
        self.interp.mark_initials_run();
    }
}

// ------------------------------------------------------------------ compiled

/// The compiled software engine: executes the levelized netlist IR and
/// bytecode produced by `synergy-codegen`. Semantically identical to the
/// interpreter (bit-identical snapshots, enforced by the differential and
/// fuzz suites), but runs the software hot path an order of magnitude
/// faster — the middle rung of the interpret → compiled → hardware engine
/// ladder. The envelope covers memories, bounded loops (unrolled at compile
/// time), partial continuous drivers, and the file/output system tasks;
/// the remaining [`VlogError::Unsupported`] surface is constructs whose
/// reference semantics genuinely need re-interpretation (overlapping
/// multiply-driven nets, combinational system calls, comb cycles).
pub struct CompiledEngine {
    sim: CompiledSim,
    clock: u32,
}

impl CompiledEngine {
    /// Compiles an elaborated design and creates an engine driven by the named
    /// clock input.
    ///
    /// # Errors
    ///
    /// Returns [`VlogError::Unsupported`] for designs outside the compilable
    /// envelope (callers should fall back to [`SoftwareEngine`]).
    pub fn new(design: &ElabModule, clock: &str) -> VlogResult<Self> {
        Self::from_program(synergy_codegen::compile(design)?, clock)
    }

    /// Creates an engine from an already-lowered program (the runtime caches
    /// lowered programs across engine migrations).
    ///
    /// # Errors
    ///
    /// Returns an error if the clock input does not exist.
    pub fn from_program(
        program: synergy_codegen::CompiledProgram,
        clock: &str,
    ) -> VlogResult<Self> {
        Self::from_program_with_tier(program, clock, Tier::from_env())
    }

    /// Creates an engine from an already-lowered program on the requested
    /// execution tier ([`Tier::RegAlloc`] falls back to [`Tier::Stack`] for
    /// programs its translation cannot handle, exactly like the stack tier
    /// falls back to the interpreter).
    ///
    /// # Errors
    ///
    /// Returns an error if the clock input does not exist.
    pub fn from_program_with_tier(
        program: synergy_codegen::CompiledProgram,
        clock: &str,
        tier: Tier,
    ) -> VlogResult<Self> {
        let sim = CompiledSim::with_tier_lenient(program, tier);
        let clock = sim.net_id(clock)?;
        Ok(CompiledEngine { sim, clock })
    }

    /// The execution tier the simulator actually runs on.
    pub fn tier(&self) -> Tier {
        self.sim.tier()
    }

    /// The underlying compiled simulator.
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }
}

impl Engine for CompiledEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Compiled
    }

    fn compiled_tier(&self) -> Option<Tier> {
        Some(self.sim.tier())
    }

    fn exec_counters(&self) -> EngineCounters {
        let c = self.sim.exec_counters();
        EngineCounters {
            settle_iters: c.settle_iters,
            worklist_drains: c.worklist_drains,
            guard_epoch_skips: c.guard_epoch_skips,
            arena_regs: c.arena_regs,
        }
    }

    fn fault_detail(&self) -> Option<String> {
        self.sim.fault_detail().map(str::to_owned)
    }

    fn get(&self, var: &str) -> VlogResult<Value> {
        self.sim.get(var)
    }

    fn set(&mut self, var: &str, value: Bits) -> VlogResult<()> {
        self.sim.set(var, value)
    }

    fn tick(&mut self, env: &mut dyn SystemEnv) -> VlogResult<TickReport> {
        if self.finished().is_some() {
            return Ok(TickReport::default());
        }
        self.sim.tick_net(self.clock, env)?;
        Ok(TickReport {
            native_cycles: 1,
            abi_requests: 2,
            tasks_handled: 0,
        })
    }

    fn save_state(&self) -> StateSnapshot {
        self.sim.save_state()
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) {
        self.sim.restore_state(snapshot);
    }

    fn finished(&self) -> Option<u32> {
        self.sim.finished()
    }

    fn take_effects(&mut self) -> Vec<TaskEffect> {
        self.sim.take_effects()
    }

    fn initials_run(&self) -> bool {
        self.sim.initials_run()
    }

    fn mark_initials_run(&mut self) {
        self.sim.mark_initials_run();
    }
}

// ------------------------------------------------------------------ hardware

/// Upper bound on native cycles per virtual tick (a stuck design is a bug).
const MAX_NATIVE_CYCLES_PER_TICK: u64 = 100_000;

/// The hardware engine: executes the SYNERGY-transformed module cycle-by-cycle on
/// the native device clock, trapping to the runtime whenever `__task` is non-zero
/// (§3.4). In this reproduction the "fabric" is the same event-driven interpreter
/// running the *transformed* design; the performance difference between software
/// and hardware execution is modelled by the `synergy-fpga` device model, not by
/// host wall-clock time.
pub struct HardwareEngine {
    transformed: Transformed,
    interp: Interpreter,
    device: String,
    clock: String,
    effects: Vec<TaskEffect>,
    finished: Option<u32>,
}

impl HardwareEngine {
    /// Creates a hardware engine from a transformed design.
    pub fn new(
        transformed: Transformed,
        device: impl Into<String>,
        clock: impl Into<String>,
    ) -> Self {
        let interp = Interpreter::new(transformed.elab.clone());
        HardwareEngine {
            transformed,
            interp,
            device: device.into(),
            clock: clock.into(),
            effects: Vec::new(),
            finished: None,
        }
    }

    /// The transformed design this engine executes.
    pub fn transformed(&self) -> &Transformed {
        &self.transformed
    }

    /// Names of the original program's state variables (excludes `__` helpers).
    fn is_program_var(name: &str) -> bool {
        !name.starts_with("__")
    }

    fn run_native_cycle(&mut self, env: &mut dyn SystemEnv) -> VlogResult<()> {
        self.interp.tick("__clk", env)
    }

    /// Services the currently pending task, writing any results back into the
    /// fabric through `set` requests, then acknowledges it with `__abi = CONT`.
    fn service_task(&mut self, task: &SystemTask, env: &mut dyn SystemEnv) -> VlogResult<()> {
        match task.kind {
            TaskKind::Display | TaskKind::Write => {
                let mut text = String::new();
                for arg in &task.args {
                    match arg {
                        Expr::StringLit(s) => text.push_str(s),
                        other => {
                            let v = self.interp.eval_expr(other, env)?;
                            text.push_str(&v.to_dec_string());
                        }
                    }
                }
                if task.kind == TaskKind::Display {
                    text.push('\n');
                }
                env.print(&text);
            }
            TaskKind::Finish => {
                let code = match task.args.first() {
                    Some(e) => self.interp.eval_expr(e, env)?.to_u64() as u32,
                    None => 0,
                };
                self.finished = Some(code);
                self.effects.push(TaskEffect::Finish(code));
            }
            TaskKind::Fread => {
                let fd = match task.args.first() {
                    Some(e) => self.interp.eval_expr(e, env)?.to_u64() as u32,
                    None => 0,
                };
                if let Some(target) = task.args.get(1) {
                    let lhs = match target {
                        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
                        Expr::Index(base, idx) => match base.as_ref() {
                            Expr::Ident(n) => Some(LValue::Index(n.clone(), (**idx).clone())),
                            _ => None,
                        },
                        _ => None,
                    };
                    if let Some(LValue::Ident(name)) = &lhs {
                        let width = self.transformed.elab.width_of_var(name);
                        if let Some(v) = env.fread(fd, width) {
                            self.interp.set(name, v)?;
                        }
                    } else if let Some(LValue::Index(name, idx)) = &lhs {
                        let width = self.transformed.elab.width_of_var(name);
                        if let Some(v) = env.fread(fd, width) {
                            let idx = self.interp.eval_expr(idx, env)?.to_u64() as usize;
                            if let Ok(Value::Memory(mut mem)) = self.interp.get(name).cloned() {
                                if idx < mem.len() {
                                    mem[idx] = v.resize(width);
                                    self.interp.set_value(name, Value::Memory(mem))?;
                                }
                            }
                        }
                    }
                }
            }
            TaskKind::Fclose => {
                if let Some(e) = task.args.first() {
                    let fd = self.interp.eval_expr(e, env)?.to_u64() as u32;
                    env.fclose(fd);
                }
            }
            TaskKind::Save => {
                self.effects
                    .push(TaskEffect::Save(string_arg(task.args.first())));
            }
            TaskKind::Restart => {
                self.effects
                    .push(TaskEffect::Restart(string_arg(task.args.first())));
            }
            TaskKind::Yield => self.effects.push(TaskEffect::Yield),
            TaskKind::Fopen | TaskKind::Feof | TaskKind::Time | TaskKind::Random => {
                // Function-style tasks are evaluated in place by the fabric model.
            }
        }
        Ok(())
    }
}

fn string_arg(arg: Option<&Expr>) -> String {
    match arg {
        Some(Expr::StringLit(s)) => s.clone(),
        _ => String::new(),
    }
}

impl Engine for HardwareEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Hardware {
            device: self.device.clone(),
        }
    }

    fn exec_counters(&self) -> EngineCounters {
        EngineCounters {
            settle_iters: self.interp.settle_iters(),
            ..EngineCounters::default()
        }
    }

    fn fault_detail(&self) -> Option<String> {
        self.interp.fault_detail().map(str::to_owned)
    }

    fn get(&self, var: &str) -> VlogResult<Value> {
        self.interp.get(var).cloned()
    }

    fn set(&mut self, var: &str, value: Bits) -> VlogResult<()> {
        self.interp.set(var, value)
    }

    fn tick(&mut self, env: &mut dyn SystemEnv) -> VlogResult<TickReport> {
        if self.finished.is_some() {
            return Ok(TickReport::default());
        }
        let mut report = TickReport::default();

        // Deliver the rising edge of the virtual clock via a set request.
        self.interp.set(&self.clock, Bits::from_u64(1, 1))?;
        report.abi_requests += 1;

        loop {
            self.run_native_cycle(env)?;
            report.native_cycles += 1;
            if report.native_cycles > MAX_NATIVE_CYCLES_PER_TICK {
                return Err(VlogError::Elaborate(
                    "hardware engine did not reach __done (stuck state machine?)".into(),
                ));
            }
            let task_id = self.interp.get_bits("__task")?.to_u64();
            if task_id != TASK_NONE {
                let task = self
                    .transformed
                    .machine
                    .task(task_id)
                    .cloned()
                    .ok_or_else(|| {
                        VlogError::Elaborate(format!("unknown task id {} trapped", task_id))
                    })?;
                self.service_task(&task, env)?;
                report.tasks_handled += 1;
                report.abi_requests += 2;
                // Acknowledge: assert CONT for one native cycle, then deassert.
                self.interp
                    .set("__abi", Bits::from_u64(8, synergy_transform::ABI_CONT))?;
                self.run_native_cycle(env)?;
                report.native_cycles += 1;
                self.interp
                    .set("__abi", Bits::from_u64(8, synergy_transform::ABI_NONE))?;
                if self.finished.is_some() {
                    return Ok(report);
                }
                continue;
            }
            if self.interp.get_bits("__done")?.to_u64() == 1 {
                break;
            }
        }

        // Deliver the falling edge (needed for negedge-sensitive programs) and let
        // the machine run back to idle.
        self.interp.set(&self.clock, Bits::from_u64(1, 0))?;
        report.abi_requests += 1;
        loop {
            self.run_native_cycle(env)?;
            report.native_cycles += 1;
            if report.native_cycles > MAX_NATIVE_CYCLES_PER_TICK {
                return Err(VlogError::Elaborate(
                    "hardware engine did not reach __done after falling edge".into(),
                ));
            }
            let task_id = self.interp.get_bits("__task")?.to_u64();
            if task_id != TASK_NONE {
                let task = self
                    .transformed
                    .machine
                    .task(task_id)
                    .cloned()
                    .ok_or_else(|| {
                        VlogError::Elaborate(format!("unknown task id {} trapped", task_id))
                    })?;
                self.service_task(&task, env)?;
                report.tasks_handled += 1;
                report.abi_requests += 2;
                self.interp
                    .set("__abi", Bits::from_u64(8, synergy_transform::ABI_CONT))?;
                self.run_native_cycle(env)?;
                report.native_cycles += 1;
                self.interp
                    .set("__abi", Bits::from_u64(8, synergy_transform::ABI_NONE))?;
                if self.finished.is_some() {
                    return Ok(report);
                }
                continue;
            }
            if self.interp.get_bits("__done")?.to_u64() == 1 {
                break;
            }
        }

        // The paper reports a minimum 3x cycle overhead for toggling the virtual
        // clock, evaluating logic, and latching assignments (§6.4).
        report.native_cycles = report.native_cycles.max(3);
        Ok(report)
    }

    fn save_state(&self) -> StateSnapshot {
        let full = self.interp.save_state();
        let values = full
            .values
            .into_iter()
            .filter(|(name, _)| Self::is_program_var(name))
            .collect();
        StateSnapshot {
            values,
            time: full.time,
        }
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) {
        self.interp.restore_state(snapshot);
    }

    fn finished(&self) -> Option<u32> {
        self.finished
    }

    fn take_effects(&mut self) -> Vec<TaskEffect> {
        let mut effects = std::mem::take(&mut self.effects);
        effects.extend(self.interp.take_effects());
        effects
    }

    fn initials_run(&self) -> bool {
        self.interp.initials_run()
    }

    fn mark_initials_run(&mut self) {
        self.interp.mark_initials_run();
    }
}

// Compile-time proof that every engine (and thus `Box<dyn Engine>`) can cross
// threads: the parallel hypervisor scheduler depends on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SoftwareEngine>();
    assert_send::<CompiledEngine>();
    assert_send::<HardwareEngine>();
    assert_send::<Box<dyn Engine>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_interp::BufferEnv;
    use synergy_transform::{transform, TransformOptions};
    use synergy_vlog::compile;

    const COUNTER: &str = r#"
        module Counter(input wire clock, output wire [7:0] out);
            reg [7:0] count = 0;
            always @(posedge clock) count <= count + 1;
            assign out = count;
        endmodule
    "#;

    const FILE_SUM: &str = r#"
        module M(input wire clock);
            integer fd = $fopen("data.bin");
            reg [31:0] r = 0;
            reg [127:0] sum = 0;
            reg [31:0] reads = 0;
            always @(posedge clock) begin
                $fread(fd, r);
                if ($feof(fd)) begin
                    $display(sum);
                    $finish(0);
                end else begin
                    sum <= sum + r;
                    reads <= reads + 1;
                end
            end
        endmodule
    "#;

    fn hw_engine(src: &str, top: &str) -> HardwareEngine {
        let design = compile(src, top).unwrap();
        let t = transform(&design, TransformOptions::default()).unwrap();
        HardwareEngine::new(t, "f1", "clock")
    }

    #[test]
    fn software_engine_runs_counter() {
        let design = compile(COUNTER, "Counter").unwrap();
        let mut engine = SoftwareEngine::new(design, "clock");
        let mut env = BufferEnv::new();
        for _ in 0..5 {
            engine.tick(&mut env).unwrap();
        }
        assert_eq!(engine.get("count").unwrap().as_scalar().to_u64(), 5);
        assert_eq!(engine.kind(), EngineKind::Software);
    }

    #[test]
    fn compiled_engine_matches_software_for_counter() {
        let design = compile(COUNTER, "Counter").unwrap();
        let mut sw = SoftwareEngine::new(design.clone(), "clock");
        let mut ce = CompiledEngine::new(&design, "clock").unwrap();
        let mut env = BufferEnv::new();
        for _ in 0..23 {
            sw.tick(&mut env).unwrap();
            ce.tick(&mut env).unwrap();
        }
        assert_eq!(sw.save_state(), ce.save_state());
        assert_eq!(ce.kind(), EngineKind::Compiled);
        assert!(!ce.kind().is_hardware());
    }

    #[test]
    fn compiled_engine_services_file_io() {
        let design = compile(FILE_SUM, "M").unwrap();
        let mut ce = CompiledEngine::new(&design, "clock").unwrap();
        let mut env = BufferEnv::new();
        env.add_file("data.bin", vec![5, 10, 15]);
        let mut ticks = 0;
        while ce.finished().is_none() && ticks < 50 {
            ce.tick(&mut env).unwrap();
            ticks += 1;
        }
        assert_eq!(ce.finished(), Some(0));
        assert_eq!(ce.get("sum").unwrap().as_scalar().to_u64(), 30);
        assert!(env.output_text().contains("30"));
    }

    #[test]
    fn state_migrates_between_software_and_compiled() {
        let design = compile(COUNTER, "Counter").unwrap();
        let mut sw = SoftwareEngine::new(design.clone(), "clock");
        let mut env = BufferEnv::new();
        for _ in 0..9 {
            sw.tick(&mut env).unwrap();
        }
        let mut ce = CompiledEngine::new(&design, "clock").unwrap();
        ce.restore_state(&sw.save_state());
        for _ in 0..3 {
            ce.tick(&mut env).unwrap();
        }
        assert_eq!(ce.get("count").unwrap().as_scalar().to_u64(), 12);

        // And onward to hardware: the snapshot format is shared.
        let mut hw = hw_engine(COUNTER, "Counter");
        hw.restore_state(&ce.save_state());
        hw.tick(&mut env).unwrap();
        assert_eq!(hw.get("count").unwrap().as_scalar().to_u64(), 13);
    }

    #[test]
    fn hardware_engine_matches_software_for_counter() {
        let design = compile(COUNTER, "Counter").unwrap();
        let mut sw = SoftwareEngine::new(design, "clock");
        let mut hw = hw_engine(COUNTER, "Counter");
        let mut env = BufferEnv::new();
        for _ in 0..17 {
            sw.tick(&mut env).unwrap();
            hw.tick(&mut env).unwrap();
        }
        assert_eq!(
            sw.get("count").unwrap().as_scalar().to_u64(),
            hw.get("count").unwrap().as_scalar().to_u64(),
        );
        assert!(hw.kind().is_hardware());
    }

    #[test]
    fn hardware_engine_services_file_io_tasks() {
        let mut hw = hw_engine(FILE_SUM, "M");
        let mut env = BufferEnv::new();
        env.add_file("data.bin", vec![5, 10, 15]);
        // The fd variable is normally initialised by software execution before
        // migration; emulate that here by running $fopen by hand.
        let fd = env.fopen("data.bin");
        hw.set("fd", Bits::from_u64(32, fd as u64)).unwrap();
        let mut ticks = 0;
        while hw.finished().is_none() && ticks < 50 {
            let report = hw.tick(&mut env).unwrap();
            assert!(report.native_cycles >= 3);
            ticks += 1;
        }
        assert_eq!(hw.finished(), Some(0));
        assert_eq!(hw.get("sum").unwrap().as_scalar().to_u64(), 30);
        assert!(env.output_text().contains("30"));
    }

    #[test]
    fn hardware_tick_reports_tasks_and_cycles() {
        let mut hw = hw_engine(FILE_SUM, "M");
        let mut env = BufferEnv::new();
        env.add_file("data.bin", vec![1, 2, 3, 4]);
        let fd = env.fopen("data.bin");
        hw.set("fd", Bits::from_u64(32, fd as u64)).unwrap();
        let report = hw.tick(&mut env).unwrap();
        assert!(report.tasks_handled >= 1, "the $fread trap");
        assert!(
            report.native_cycles > 3,
            "task traps cost extra native cycles"
        );
        assert!(report.abi_requests >= 4);
    }

    #[test]
    fn state_migrates_between_software_and_hardware() {
        let design = compile(COUNTER, "Counter").unwrap();
        let mut sw = SoftwareEngine::new(design, "clock");
        let mut env = BufferEnv::new();
        for _ in 0..9 {
            sw.tick(&mut env).unwrap();
        }
        let snapshot = sw.save_state();

        let mut hw = hw_engine(COUNTER, "Counter");
        hw.restore_state(&snapshot);
        for _ in 0..3 {
            hw.tick(&mut env).unwrap();
        }
        assert_eq!(hw.get("count").unwrap().as_scalar().to_u64(), 12);

        // And back again: hardware state flows into a fresh software engine.
        let snapshot = hw.save_state();
        assert!(snapshot.values.keys().all(|k| !k.starts_with("__")));
        let design = compile(COUNTER, "Counter").unwrap();
        let mut sw2 = SoftwareEngine::new(design, "clock");
        sw2.restore_state(&snapshot);
        sw2.tick(&mut env).unwrap();
        assert_eq!(sw2.get("count").unwrap().as_scalar().to_u64(), 13);
    }

    #[test]
    fn finish_surfaces_as_effect() {
        let src = r#"module M(input wire clock);
                         reg [3:0] n = 0;
                         always @(posedge clock) begin
                             n <= n + 1;
                             if (n == 2) $finish(9);
                         end
                     endmodule"#;
        let mut hw = hw_engine(src, "M");
        let mut env = BufferEnv::new();
        for _ in 0..8 {
            hw.tick(&mut env).unwrap();
            if hw.finished().is_some() {
                break;
            }
        }
        assert_eq!(hw.finished(), Some(9));
        assert!(hw
            .take_effects()
            .iter()
            .any(|e| matches!(e, TaskEffect::Finish(9))));
    }

    #[test]
    fn save_task_raises_effect_in_hardware() {
        let src = r#"module M(input wire clock, input wire do_save);
                         reg [31:0] n = 0;
                         always @(posedge clock) begin
                             if (do_save) $save("ckpt");
                             n <= n + 1;
                         end
                     endmodule"#;
        let mut hw = hw_engine(src, "M");
        let mut env = BufferEnv::new();
        hw.tick(&mut env).unwrap();
        assert!(hw.take_effects().is_empty());
        hw.set("do_save", Bits::from_u64(1, 1)).unwrap();
        hw.tick(&mut env).unwrap();
        let effects = hw.take_effects();
        assert!(effects
            .iter()
            .any(|e| matches!(e, TaskEffect::Save(tag) if tag == "ckpt")));
    }
}
