//! # synergy-runtime
//!
//! The Cascade-style runtime at the heart of SYNERGY (§2.1, §3.5 of the paper).
//!
//! A [`Runtime`] owns one user program and executes it through interchangeable
//! [`Engine`]s: the [`SoftwareEngine`] interprets the original program directly
//! (full unsynthesizable Verilog support), while the [`HardwareEngine`] executes
//! the SYNERGY-transformed state machine on a simulated fabric, trapping to the
//! runtime at sub-clock-tick granularity whenever an unsynthesizable task needs
//! servicing. State capture (`$save`/`$restart`), workload migration, and the
//! virtual-clock profiling used throughout the paper's evaluation live here.
#![warn(missing_docs)]

mod engine;
mod runtime;

pub use engine::{CompiledEngine, Engine, EngineKind, HardwareEngine, SoftwareEngine, TickReport};
pub use runtime::{
    CompiledTier, EnginePolicy, ExecMode, Profiler, RunReport, Runtime, RuntimeEvent, Sample,
};
