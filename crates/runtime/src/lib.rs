//! # synergy-runtime
//!
//! The Cascade-style runtime at the heart of SYNERGY (§2.1, §3.5 of the paper).
//!
//! A [`Runtime`] owns one user program and executes it through interchangeable
//! [`Engine`]s: the [`SoftwareEngine`] interprets the original program directly
//! (full unsynthesizable Verilog support), while the [`HardwareEngine`] executes
//! the SYNERGY-transformed state machine on a simulated fabric, trapping to the
//! runtime at sub-clock-tick granularity whenever an unsynthesizable task needs
//! servicing. State capture (`$save`/`$restart`), workload migration, and the
//! virtual-clock profiling used throughout the paper's evaluation live here.
//!
//! The [`checkpoint`] module extends in-memory state capture with a durable
//! wire format: [`Runtime::save_checkpoint`] serializes the whole tenant
//! (program, engine placement, architectural state, environment, clocks) into
//! a `synergy-snapshot` frame, and [`Runtime::restore_checkpoint`] rebuilds a
//! running tenant from those bytes in a fresh process.
#![warn(missing_docs)]

pub mod checkpoint;
mod engine;
mod runtime;

pub use checkpoint::CheckpointError;
pub use engine::{
    CompiledEngine, Engine, EngineCounters, EngineKind, HardwareEngine, SoftwareEngine, TickReport,
};
pub use runtime::{
    CompiledTier, EnginePolicy, ExecMode, OptLevel, Profiler, RunReport, Runtime, RuntimeEvent,
    Sample, MAX_PROFILER_SAMPLES,
};
// Engine state capture speaks the interpreter's snapshot type; re-export it so
// layers above (hypervisor, control plane) can name what `peek_state` returns
// without depending on the interpreter crate directly.
pub use synergy_interp::StateSnapshot;
