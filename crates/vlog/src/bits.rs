//! Arbitrary-width two-state bit vectors.
//!
//! [`Bits`] is the value type used throughout the SYNERGY reproduction for wire and
//! register contents. It models Verilog's packed vectors with two-state (0/1) logic;
//! see `DESIGN.md` for why four-state logic was not needed for the paper's
//! evaluation. Values carry an explicit bit width and all arithmetic wraps to that
//! width, matching the semantics of Verilog expressions once widths are resolved.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-width, two-state (0/1) bit vector.
///
/// The width is fixed at construction; operations that combine two values
/// (addition, bitwise ops, comparison) extend the narrower operand with zeros,
/// which matches Verilog's unsigned expression semantics after width resolution.
///
/// # Examples
///
/// ```
/// use synergy_vlog::Bits;
///
/// let a = Bits::from_u64(32, 40);
/// let b = Bits::from_u64(32, 2);
/// assert_eq!(a.add(&b).to_u64(), 42);
/// assert_eq!(a.width(), 32);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bits {
    /// Width in bits. Zero-width values are normalised to width 1.
    width: usize,
    /// Little-endian 64-bit words; bits above `width` are always zero.
    words: Vec<u64>,
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64)
}

impl Bits {
    /// Creates a zero value of the given width.
    ///
    /// A requested width of 0 is normalised to 1, mirroring how Verilog treats
    /// degenerate ranges.
    pub fn zero(width: usize) -> Self {
        let width = width.max(1);
        Bits {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates a value of the given width with every bit set.
    pub fn ones(width: usize) -> Self {
        let mut b = Bits::zero(width);
        for w in b.words.iter_mut() {
            *w = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a value from the low bits of `v`, truncated or zero-extended to `width`.
    pub fn from_u64(width: usize, v: u64) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = v;
        b.mask_top();
        b
    }

    /// Creates a value from a `u128`, truncated or zero-extended to `width`.
    pub fn from_u128(width: usize, v: u128) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = v as u64;
        if b.words.len() > 1 {
            b.words[1] = (v >> 64) as u64;
        }
        b.mask_top();
        b
    }

    /// Creates a single-bit value from a boolean.
    pub fn from_bool(v: bool) -> Self {
        Bits::from_u64(1, v as u64)
    }

    /// Creates a value from raw little-endian words.
    pub fn from_words(width: usize, words: Vec<u64>) -> Self {
        let width = width.max(1);
        let mut b = Bits { width, words };
        b.words.resize(words_for(width), 0);
        b.mask_top();
        b
    }

    /// The width of this value in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// A view of the underlying little-endian words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// The low 64 bits of the value.
    pub fn to_u64(&self) -> u64 {
        self.words[0]
    }

    /// The low 128 bits of the value.
    pub fn to_u128(&self) -> u128 {
        let lo = self.words[0] as u128;
        let hi = if self.words.len() > 1 {
            self.words[1] as u128
        } else {
            0
        };
        (hi << 64) | lo
    }

    /// `true` if any bit is set (Verilog truthiness).
    pub fn to_bool(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        !self.to_bool()
    }

    /// Returns the bit at `idx`, or `false` if out of range.
    pub fn bit(&self, idx: usize) -> bool {
        if idx >= self.width {
            return false;
        }
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets the bit at `idx`. Bits outside the width are ignored.
    pub fn set_bit(&mut self, idx: usize, v: bool) {
        if idx >= self.width {
            return;
        }
        let w = idx / 64;
        let m = 1u64 << (idx % 64);
        if v {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Returns a copy truncated or zero-extended to `width`.
    pub fn resize(&self, width: usize) -> Bits {
        let width = width.max(1);
        let mut b = Bits::zero(width);
        let n = b.words.len().min(self.words.len());
        b.words[..n].copy_from_slice(&self.words[..n]);
        b.mask_top();
        b
    }

    /// Returns a copy sign-extended (from its own top bit) to `width`.
    pub fn sign_extend(&self, width: usize) -> Bits {
        let width = width.max(1);
        if width <= self.width || !self.bit(self.width - 1) {
            return self.resize(width);
        }
        let mut b = self.resize(width);
        for i in self.width..width {
            b.set_bit(i, true);
        }
        b
    }

    /// Extracts the inclusive bit range `[hi:lo]` as a new value of width `hi - lo + 1`.
    ///
    /// Bits beyond this value's width read as zero.
    pub fn slice(&self, hi: usize, lo: usize) -> Bits {
        assert!(hi >= lo, "slice hi must be >= lo");
        let w = hi - lo + 1;
        let mut out = Bits::zero(w);
        for i in 0..w {
            out.set_bit(i, self.bit(lo + i));
        }
        out
    }

    /// Writes `val` into the inclusive bit range `[hi:lo]` of `self`.
    pub fn set_slice(&mut self, hi: usize, lo: usize, val: &Bits) {
        assert!(hi >= lo, "slice hi must be >= lo");
        let w = hi - lo + 1;
        for i in 0..w {
            if lo + i < self.width {
                self.set_bit(lo + i, val.bit(i));
            }
        }
    }

    /// Concatenates `{self, rhs}` — `self` occupies the high bits, as in Verilog.
    pub fn concat(&self, rhs: &Bits) -> Bits {
        let w = self.width + rhs.width;
        let mut out = Bits::zero(w);
        for i in 0..rhs.width {
            out.set_bit(i, rhs.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(rhs.width + i, self.bit(i));
        }
        out
    }

    /// Replicates the value `n` times, as in `{n{expr}}`.
    pub fn replicate(&self, n: usize) -> Bits {
        if n == 0 {
            return Bits::zero(1);
        }
        let mut out = self.clone();
        for _ in 1..n {
            out = out.concat(self);
        }
        out
    }

    fn binary_width(&self, rhs: &Bits) -> usize {
        self.width.max(rhs.width)
    }

    /// Wrapping addition at the wider operand's width.
    pub fn add(&self, rhs: &Bits) -> Bits {
        let w = self.binary_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        let mut out = Bits::zero(w);
        let mut carry = 0u64;
        for i in 0..out.words.len() {
            let (s1, c1) = a.words[i].overflowing_add(b.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Wrapping subtraction at the wider operand's width.
    pub fn sub(&self, rhs: &Bits) -> Bits {
        let w = self.binary_width(rhs);
        self.add(&rhs.resize(w).not().add(&Bits::from_u64(w, 1)))
            .resize(w)
    }

    /// Two's-complement negation at this value's width.
    pub fn neg(&self) -> Bits {
        Bits::zero(self.width).sub(self)
    }

    /// Wrapping multiplication at the wider operand's width.
    pub fn mul(&self, rhs: &Bits) -> Bits {
        let w = self.binary_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        let mut out = Bits::zero(w);
        for (i, &aw) in a.words.iter().enumerate() {
            if aw == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bw) in b.words.iter().enumerate() {
                if i + j >= out.words.len() {
                    break;
                }
                let cur = out.words[i + j] as u128 + (aw as u128) * (bw as u128) + carry;
                out.words[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        out.mask_top();
        out
    }

    /// Unsigned division; division by zero yields all-ones, as many simulators do.
    pub fn div(&self, rhs: &Bits) -> Bits {
        let w = self.binary_width(rhs);
        if rhs.is_zero() {
            return Bits::ones(w);
        }
        if w <= 128 {
            return Bits::from_u128(w, self.to_u128() / rhs.to_u128());
        }
        // Schoolbook long division for wide values.
        let mut quotient = Bits::zero(w);
        let mut rem = Bits::zero(w);
        for i in (0..w).rev() {
            rem = rem.shl(1);
            rem.set_bit(0, self.bit(i));
            if rem.ucmp(rhs) != Ordering::Less {
                rem = rem.sub(rhs);
                quotient.set_bit(i, true);
            }
        }
        quotient
    }

    /// Unsigned remainder; remainder by zero yields the dividend.
    pub fn rem(&self, rhs: &Bits) -> Bits {
        let w = self.binary_width(rhs);
        if rhs.is_zero() {
            return self.resize(w);
        }
        if w <= 128 {
            return Bits::from_u128(w, self.to_u128() % rhs.to_u128());
        }
        let q = self.div(rhs);
        self.resize(w).sub(&q.mul(rhs))
    }

    /// Bitwise AND at the wider operand's width.
    pub fn and(&self, rhs: &Bits) -> Bits {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR at the wider operand's width.
    pub fn or(&self, rhs: &Bits) -> Bits {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR at the wider operand's width.
    pub fn xor(&self, rhs: &Bits) -> Bits {
        self.zip(rhs, |a, b| a ^ b)
    }

    fn zip(&self, rhs: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        let w = self.binary_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        let mut out = Bits::zero(w);
        for i in 0..out.words.len() {
            out.words[i] = f(a.words[i], b.words[i]);
        }
        out.mask_top();
        out
    }

    /// Bitwise NOT at this value's width.
    pub fn not(&self) -> Bits {
        let mut out = self.clone();
        for w in out.words.iter_mut() {
            *w = !*w;
        }
        out.mask_top();
        out
    }

    /// Logical shift left by `n`; bits shifted past the width are lost.
    pub fn shl(&self, n: usize) -> Bits {
        let mut out = Bits::zero(self.width);
        for i in (n..self.width).rev() {
            out.set_bit(i, self.bit(i - n));
        }
        out
    }

    /// Logical shift right by `n`.
    pub fn shr(&self, n: usize) -> Bits {
        let mut out = Bits::zero(self.width);
        if n >= self.width {
            return out;
        }
        for i in 0..self.width - n {
            out.set_bit(i, self.bit(i + n));
        }
        out
    }

    /// Arithmetic (sign-preserving) shift right by `n`.
    pub fn ashr(&self, n: usize) -> Bits {
        let sign = self.bit(self.width - 1);
        let mut out = self.shr(n);
        if sign {
            for i in self.width.saturating_sub(n)..self.width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Unsigned comparison of the numeric values (widths need not match).
    pub fn ucmp(&self, rhs: &Bits) -> Ordering {
        let w = self.binary_width(rhs);
        let a = self.resize(w);
        let b = rhs.resize(w);
        for i in (0..a.words.len()).rev() {
            match a.words[i].cmp(&b.words[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Signed two's-complement comparison at the wider operand's width.
    pub fn scmp(&self, rhs: &Bits) -> Ordering {
        let w = self.binary_width(rhs);
        let a = self.sign_extend(w);
        let b = rhs.sign_extend(w);
        let an = a.bit(w - 1);
        let bn = b.bit(w - 1);
        match (an, bn) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => a.ucmp(&b),
        }
    }

    /// Reduction AND: 1 iff every bit is set.
    pub fn reduce_and(&self) -> bool {
        (0..self.width).all(|i| self.bit(i))
    }

    /// Reduction OR: 1 iff any bit is set.
    pub fn reduce_or(&self) -> bool {
        self.to_bool()
    }

    /// Reduction XOR: parity of the set bits.
    pub fn reduce_xor(&self) -> bool {
        self.words.iter().map(|w| w.count_ones()).sum::<u32>() % 2 == 1
    }

    /// The number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Parses the numeric part of a Verilog literal in the given base.
    ///
    /// Underscores are ignored. Returns `None` on an invalid digit.
    pub fn parse_radix(width: usize, base: u32, digits: &str) -> Option<Bits> {
        let mut out = Bits::zero(width);
        let shift = match base {
            2 => 1,
            8 => 3,
            16 => 4,
            10 => 0,
            _ => return None,
        };
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(base)? as u64;
            if base == 10 {
                out = out
                    .mul(&Bits::from_u64(width, 10))
                    .add(&Bits::from_u64(width, d));
            } else {
                out = out.shl(shift);
                out = out.or(&Bits::from_u64(width, d));
            }
            out = out.resize(width);
        }
        Some(out)
    }

    /// Renders the value as a lowercase hexadecimal string without a prefix.
    pub fn to_hex_string(&self) -> String {
        let digits = self.width.div_ceil(4);
        let mut s = String::with_capacity(digits);
        for i in (0..digits).rev() {
            let nib = self
                .slice(((i * 4) + 3).min(self.width - 1), i * 4)
                .to_u64();
            s.push(std::char::from_digit(nib as u32, 16).unwrap());
        }
        s
    }

    /// Renders the value as an unsigned decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.width <= 128 {
            return format!("{}", self.to_u128());
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let ten = Bits::from_u64(self.width, 10);
        while !cur.is_zero() {
            let d = cur.rem(&ten).to_u64();
            digits.push(std::char::from_digit(d as u32, 10).unwrap());
            cur = cur.div(&ten);
        }
        if digits.is_empty() {
            digits.push('0');
        }
        digits.iter().rev().collect()
    }
}

impl Default for Bits {
    fn default() -> Self {
        Bits::zero(1)
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width, self.to_hex_string())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec_string())
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex_string())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(self.width);
        for i in (0..self.width).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        write!(f, "{}", s)
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_bool(v)
    }
}

impl From<u64> for Bits {
    fn from(v: u64) -> Self {
        Bits::from_u64(64, v)
    }
}

impl PartialOrd for Bits {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bits {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ucmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_width() {
        let b = Bits::zero(33);
        assert_eq!(b.width(), 33);
        assert!(b.is_zero());
        assert_eq!(Bits::zero(0).width(), 1);
    }

    #[test]
    fn from_and_to_u64() {
        let b = Bits::from_u64(8, 0x1ff);
        assert_eq!(b.to_u64(), 0xff, "value is truncated to width");
    }

    #[test]
    fn wide_values_round_trip() {
        let v: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
        let b = Bits::from_u128(128, v);
        assert_eq!(b.to_u128(), v);
    }

    #[test]
    fn add_wraps_at_width() {
        let a = Bits::from_u64(8, 250);
        let b = Bits::from_u64(8, 10);
        assert_eq!(a.add(&b).to_u64(), 4);
    }

    #[test]
    fn add_carries_across_words() {
        let a = Bits::from_u128(128, u64::MAX as u128);
        let b = Bits::from_u64(128, 1);
        assert_eq!(a.add(&b).to_u128(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn sub_and_neg() {
        let a = Bits::from_u64(16, 5);
        let b = Bits::from_u64(16, 7);
        assert_eq!(a.sub(&b).to_u64(), 0xfffe);
        assert_eq!(b.sub(&a).to_u64(), 2);
        assert_eq!(a.neg().to_u64(), 0xfffb);
    }

    #[test]
    fn mul_wide() {
        let a = Bits::from_u64(64, u32::MAX as u64);
        let b = Bits::from_u64(64, u32::MAX as u64);
        assert_eq!(a.mul(&b).to_u64(), (u32::MAX as u64) * (u32::MAX as u64));
    }

    #[test]
    fn div_rem_basics() {
        let a = Bits::from_u64(32, 100);
        let b = Bits::from_u64(32, 7);
        assert_eq!(a.div(&b).to_u64(), 14);
        assert_eq!(a.rem(&b).to_u64(), 2);
        assert_eq!(a.div(&Bits::zero(32)).to_u64(), u32::MAX as u64);
    }

    #[test]
    fn div_wide_long_division() {
        let a = Bits::from_u128(200, 1u128 << 100);
        let b = Bits::from_u64(200, 3);
        let q = a.div(&b);
        let expected = (1u128 << 100) / 3;
        assert_eq!(q.to_u128(), expected);
    }

    #[test]
    fn bitwise_ops() {
        let a = Bits::from_u64(8, 0b1100);
        let b = Bits::from_u64(8, 0b1010);
        assert_eq!(a.and(&b).to_u64(), 0b1000);
        assert_eq!(a.or(&b).to_u64(), 0b1110);
        assert_eq!(a.xor(&b).to_u64(), 0b0110);
        assert_eq!(a.not().to_u64(), 0xf3);
    }

    #[test]
    fn shifts() {
        let a = Bits::from_u64(8, 0b1001_0001);
        assert_eq!(a.shl(1).to_u64(), 0b0010_0010);
        assert_eq!(a.shr(4).to_u64(), 0b1001);
        assert_eq!(a.ashr(4).to_u64(), 0b1111_1001);
        assert_eq!(a.shr(100).to_u64(), 0);
    }

    #[test]
    fn slicing_and_concat() {
        let a = Bits::from_u64(16, 0xabcd);
        assert_eq!(a.slice(15, 8).to_u64(), 0xab);
        assert_eq!(a.slice(7, 0).to_u64(), 0xcd);
        let c = a.slice(15, 8).concat(&a.slice(7, 0));
        assert_eq!(c.to_u64(), 0xabcd);
        assert_eq!(c.width(), 16);
    }

    #[test]
    fn set_slice_updates_range() {
        let mut a = Bits::zero(16);
        a.set_slice(11, 4, &Bits::from_u64(8, 0xff));
        assert_eq!(a.to_u64(), 0x0ff0);
    }

    #[test]
    fn replicate_builds_patterns() {
        let a = Bits::from_u64(2, 0b10);
        assert_eq!(a.replicate(4).to_u64(), 0b10101010);
        assert_eq!(a.replicate(4).width(), 8);
    }

    #[test]
    fn comparisons() {
        let a = Bits::from_u64(8, 200);
        let b = Bits::from_u64(8, 100);
        assert_eq!(a.ucmp(&b), Ordering::Greater);
        // 200 as signed 8-bit is negative.
        assert_eq!(a.scmp(&b), Ordering::Less);
    }

    #[test]
    fn reductions() {
        assert!(Bits::ones(7).reduce_and());
        assert!(!Bits::from_u64(7, 0b0111111).reduce_and());
        assert!(Bits::from_u64(7, 0b1).reduce_or());
        assert!(!Bits::from_u64(7, 0b11).reduce_xor());
        assert!(Bits::from_u64(7, 0b111).reduce_xor());
    }

    #[test]
    fn parse_radix_bases() {
        assert_eq!(Bits::parse_radix(8, 16, "ff").unwrap().to_u64(), 0xff);
        assert_eq!(Bits::parse_radix(8, 2, "1010_1010").unwrap().to_u64(), 0xaa);
        assert_eq!(Bits::parse_radix(16, 10, "1234").unwrap().to_u64(), 1234);
        assert_eq!(Bits::parse_radix(8, 8, "17").unwrap().to_u64(), 0o17);
        assert!(Bits::parse_radix(8, 16, "xyz").is_none());
    }

    #[test]
    fn display_formats() {
        let b = Bits::from_u64(16, 0x2a);
        assert_eq!(format!("{}", b), "42");
        assert_eq!(format!("{:x}", b), "002a");
        assert_eq!(format!("{:b}", Bits::from_u64(4, 0b1010)), "1010");
        assert_eq!(format!("{:?}", Bits::from_u64(8, 0xff)), "8'hff");
    }

    #[test]
    fn dec_string_wide() {
        let b = Bits::from_u128(130, 340_282_366_920_938_463_463_374_607_431_768_211_455u128);
        assert_eq!(b.to_dec_string(), "340282366920938463463374607431768211455");
    }

    #[test]
    fn sign_extension() {
        let b = Bits::from_u64(4, 0b1000);
        assert_eq!(b.sign_extend(8).to_u64(), 0xf8);
        assert_eq!(Bits::from_u64(4, 0b0100).sign_extend(8).to_u64(), 0x04);
    }
}
