//! Abstract syntax tree for the Verilog subset understood by SYNERGY.
//!
//! The subset covers the constructs exercised by the paper: module declarations with
//! input/output ports, wire/reg/integer declarations (including 1-D memories),
//! continuous assignments, `always`/`initial` blocks with edge-sensitive event
//! controls, blocking and non-blocking assignments, `if`/`case` statements,
//! `begin/end` and `fork/join` blocks, bounded `for`/`repeat` loops, module
//! instantiation, and the unsynthesizable system tasks (`$display`, `$fopen`,
//! `$fread`, `$feof`, `$finish`, `$save`, `$restart`, `$yield`, ...).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Bits;

/// A parsed source file: an ordered list of module declarations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SourceFile {
    /// Module declarations in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A Verilog module declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Port list in declaration order.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ports: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout` (accepted by the parser, treated as output by the tools)
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => write!(f, "input"),
            PortDir::Output => write!(f, "output"),
            PortDir::Inout => write!(f, "inout"),
        }
    }
}

/// A module port declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port direction.
    pub dir: PortDir,
    /// `true` if declared `reg` (only meaningful for outputs).
    pub is_reg: bool,
    /// Packed range, e.g. `[31:0]`; `None` means a single bit.
    pub range: Option<Range>,
    /// Port name.
    pub name: String,
}

/// A packed or memory range `[msb:lsb]` whose bounds are constant expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Most-significant bound expression.
    pub msb: Expr,
    /// Least-significant bound expression.
    pub lsb: Expr,
}

/// Kinds of variable declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire` — value driven by continuous assignment or port connection.
    Wire,
    /// `reg` — value assigned in procedural blocks.
    Reg,
    /// `integer` — a 32-bit signed register.
    Integer,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetKind::Wire => write!(f, "wire"),
            NetKind::Reg => write!(f, "reg"),
            NetKind::Integer => write!(f, "integer"),
        }
    }
}

/// Attribute instance attached to a declaration, e.g. `(* non_volatile *)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Optional constant value (unused by the current passes).
    pub value: Option<String>,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// A net/reg/integer declaration (possibly several declarators share one keyword).
    Decl(Decl),
    /// A `parameter`/`localparam` declaration.
    Param(ParamDecl),
    /// A continuous assignment `assign lhs = rhs;`.
    ContinuousAssign(Assign),
    /// An `always @(...)` block.
    Always(AlwaysBlock),
    /// An `initial` block.
    Initial(Stmt),
    /// A module instantiation.
    Instance(Instance),
}

/// A single variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decl {
    /// Attributes such as `(* non_volatile *)`.
    pub attributes: Vec<Attribute>,
    /// Declaration kind.
    pub kind: NetKind,
    /// Packed range; `None` for 1-bit (or 32-bit for `integer`).
    pub range: Option<Range>,
    /// Declared name.
    pub name: String,
    /// Memory (unpacked array) range, e.g. `mem [0:255]`.
    pub mem_range: Option<Range>,
    /// Optional initialiser (wire continuous value or reg initial value).
    pub init: Option<Expr>,
}

/// A `parameter` or `localparam` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// `true` for `localparam`.
    pub local: bool,
    /// Parameter name.
    pub name: String,
    /// Constant value expression.
    pub value: Expr,
}

/// An assignment target and source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Left-hand side.
    pub lhs: LValue,
    /// Right-hand side.
    pub rhs: Expr,
}

/// An `always` block with its sensitivity list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Sensitivity events; an empty list means `always @*`.
    pub events: Vec<Event>,
    /// Body statement.
    pub body: Stmt,
}

/// One event in a sensitivity list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Edge qualifier.
    pub edge: Edge,
    /// The watched expression (usually an identifier).
    pub expr: Expr,
}

/// Edge qualifiers for sensitivity-list events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// `posedge x`
    Pos,
    /// `negedge x`
    Neg,
    /// level sensitivity (`x` or `@*`)
    Any,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Pos => write!(f, "posedge"),
            Edge::Neg => write!(f, "negedge"),
            Edge::Any => write!(f, "any"),
        }
    }
}

/// A module instantiation `Type name(.port(expr), ...);`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Instantiated module type name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Port connections.
    pub connections: Vec<Connection>,
}

/// A single port connection in an instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Port name for named connections; `None` for positional.
    pub port: Option<String>,
    /// Connected expression; `None` for an explicitly unconnected port `.p()`.
    pub expr: Option<Expr>,
}

/// Procedural statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `fork ... join`
    Fork(Vec<Stmt>),
    /// Blocking assignment `lhs = rhs;`
    Blocking(Assign),
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking(Assign),
    /// `if (cond) then else other`
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken branch.
        then: Box<Stmt>,
        /// Optional else branch.
        other: Option<Box<Stmt>>,
    },
    /// `case (expr) item: stmt ... default: stmt endcase`
    Case {
        /// Scrutinee expression.
        expr: Expr,
        /// Case arms.
        arms: Vec<CaseArm>,
        /// Default arm.
        default: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body` with constant trip count.
    For {
        /// Initial blocking assignment.
        init: Box<Assign>,
        /// Loop condition.
        cond: Expr,
        /// Step blocking assignment.
        step: Box<Assign>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `repeat (count) body` with a constant count.
    Repeat {
        /// Constant repetition count.
        count: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// A system task invocation such as `$display(...)`.
    SystemTask(SystemTask),
    /// The empty statement `;`.
    Null,
}

impl Stmt {
    /// Returns `true` if the statement (recursively) contains any system task.
    pub fn contains_system_task(&self) -> bool {
        match self {
            Stmt::SystemTask(_) => true,
            Stmt::Block(stmts) | Stmt::Fork(stmts) => stmts.iter().any(Stmt::contains_system_task),
            Stmt::If { then, other, .. } => {
                then.contains_system_task()
                    || other.as_ref().is_some_and(|s| s.contains_system_task())
            }
            Stmt::Case { arms, default, .. } => {
                arms.iter().any(|a| a.body.contains_system_task())
                    || default.as_ref().is_some_and(|s| s.contains_system_task())
            }
            Stmt::For { body, .. } | Stmt::Repeat { body, .. } => body.contains_system_task(),
            _ => false,
        }
    }
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Match labels (a comma-separated list in the source).
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// The unsynthesizable system tasks recognised by SYNERGY.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemTask {
    /// Which task.
    pub kind: TaskKind,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// Identifies a system task or system function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// `$display(...)` — print with trailing newline.
    Display,
    /// `$write(...)` — print without newline.
    Write,
    /// `$finish(code)` — terminate the program.
    Finish,
    /// `$fopen("path")` — open a file, returns a descriptor.
    Fopen,
    /// `$fclose(fd)` — close a file.
    Fclose,
    /// `$fread(fd, reg)` — read a value from a file into a register.
    Fread,
    /// `$feof(fd)` — end-of-file predicate.
    Feof,
    /// `$save("tag")` — capture program state (SYNERGY extension as per §3.5).
    Save,
    /// `$restart("tag")` — restore program state (§3.5).
    Restart,
    /// `$yield` — application-directed quiescence point (§5.3).
    Yield,
    /// `$time` — current simulation time.
    Time,
    /// `$random` — pseudo-random 32-bit value.
    Random,
}

impl TaskKind {
    /// Parses a system task name (without the leading `$`).
    pub fn from_name(name: &str) -> Option<TaskKind> {
        Some(match name {
            "display" => TaskKind::Display,
            "write" => TaskKind::Write,
            "finish" => TaskKind::Finish,
            "fopen" => TaskKind::Fopen,
            "fclose" => TaskKind::Fclose,
            "fread" => TaskKind::Fread,
            "feof" => TaskKind::Feof,
            "save" => TaskKind::Save,
            "restart" => TaskKind::Restart,
            "yield" => TaskKind::Yield,
            "time" => TaskKind::Time,
            "random" => TaskKind::Random,
            _ => return None,
        })
    }

    /// `true` for tasks that may appear inside expressions (`$feof`, `$time`, ...).
    pub fn is_function(&self) -> bool {
        matches!(
            self,
            TaskKind::Feof | TaskKind::Time | TaskKind::Random | TaskKind::Fopen
        )
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskKind::Display => "$display",
            TaskKind::Write => "$write",
            TaskKind::Finish => "$finish",
            TaskKind::Fopen => "$fopen",
            TaskKind::Fclose => "$fclose",
            TaskKind::Fread => "$fread",
            TaskKind::Feof => "$feof",
            TaskKind::Save => "$save",
            TaskKind::Restart => "$restart",
            TaskKind::Yield => "$yield",
            TaskKind::Time => "$time",
            TaskKind::Random => "$random",
        };
        write!(f, "{}", s)
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A whole variable.
    Ident(String),
    /// A single-bit or memory-element select `x[i]`.
    Index(String, Expr),
    /// A constant part select `x[hi:lo]`.
    Slice(String, Expr, Expr),
    /// A concatenation of lvalues `{a, b}`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Names of all variables written by this lvalue.
    pub fn targets(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n) | LValue::Index(n, _) | LValue::Slice(n, _, _) => vec![n],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.targets()).collect(),
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value with an explicit or inferred width.
    Literal(Bits),
    /// A string literal (only valid as a system-task argument).
    StringLit(String),
    /// A variable reference.
    Ident(String),
    /// Bit select or memory element select `x[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Constant part select `x[hi:lo]`.
    Slice(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Replicate(Box<Expr>, Box<Expr>),
    /// System function call, e.g. `$feof(fd)`.
    SystemCall(TaskKind, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an unsized decimal literal.
    pub fn number(v: u64) -> Expr {
        Expr::Literal(Bits::from_u64(32, v))
    }

    /// Convenience constructor for a sized literal.
    pub fn sized(width: usize, v: u64) -> Expr {
        Expr::Literal(Bits::from_u64(width, v))
    }

    /// Convenience constructor for an identifier reference.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Collects the names of all identifiers referenced by this expression.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ident(n) => out.push(n),
            Expr::Index(a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Slice(a, b, c) => {
                a.collect_idents(out);
                b.collect_idents(out);
                c.collect_idents(out);
            }
            Expr::Unary(_, a) => a.collect_idents(out),
            Expr::Binary(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Ternary(a, b, c) => {
                a.collect_idents(out);
                b.collect_idents(out);
                c.collect_idents(out);
            }
            Expr::Concat(parts) => parts.iter().for_each(|p| p.collect_idents(out)),
            Expr::Replicate(n, e) => {
                n.collect_idents(out);
                e.collect_idents(out);
            }
            Expr::SystemCall(_, args) => args.iter().for_each(|a| a.collect_idents(out)),
            Expr::Literal(_) | Expr::StringLit(_) => {}
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `~x`
    Not,
    /// `!x`
    LogicalNot,
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `&x`
    ReduceAnd,
    /// `|x`
    ReduceOr,
    /// `^x`
    ReduceXor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    AShr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinaryOp {
    /// `true` for operators whose result is always a single bit.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicalAnd
                | BinaryOp::LogicalOr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_kind_round_trip() {
        for name in [
            "display", "write", "finish", "fopen", "fclose", "fread", "feof", "save", "restart",
            "yield", "time", "random",
        ] {
            let k = TaskKind::from_name(name).unwrap();
            assert_eq!(format!("{}", k), format!("${}", name));
        }
        assert!(TaskKind::from_name("bogus").is_none());
    }

    #[test]
    fn expr_ident_collection() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::ident("a")),
            Box::new(Expr::Ternary(
                Box::new(Expr::ident("sel")),
                Box::new(Expr::ident("b")),
                Box::new(Expr::number(1)),
            )),
        );
        let ids = e.idents();
        assert_eq!(ids, vec!["a", "sel", "b"]);
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat(vec![
            LValue::Ident("a".into()),
            LValue::Index("b".into(), Expr::number(0)),
        ]);
        assert_eq!(lv.targets(), vec!["a", "b"]);
    }

    #[test]
    fn stmt_contains_system_task() {
        let s = Stmt::Block(vec![
            Stmt::Null,
            Stmt::If {
                cond: Expr::ident("c"),
                then: Box::new(Stmt::SystemTask(SystemTask {
                    kind: TaskKind::Display,
                    args: vec![],
                })),
                other: None,
            },
        ]);
        assert!(s.contains_system_task());
        assert!(!Stmt::Null.contains_system_task());
    }
}
