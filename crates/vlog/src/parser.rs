//! Recursive-descent parser for the Verilog subset.
//!
//! The grammar is the subset described in [`crate::ast`]. Operator precedence
//! follows the Verilog standard (ternary lowest, then `||`, `&&`, `|`, `^`, `&`,
//! equality, relational, shift, additive, multiplicative, unary).

use crate::ast::*;
use crate::error::{VlogError, VlogResult};
use crate::lexer::{Spanned, Sym, Token};
use crate::Bits;

/// Parses a token stream (from [`crate::lexer::lex`]) into a [`SourceFile`].
///
/// # Errors
///
/// Returns [`VlogError::Parse`] describing the offending token and position.
pub fn parse_tokens(tokens: &[Spanned]) -> VlogResult<SourceFile> {
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_end() {
        modules.push(p.module()?);
    }
    Ok(SourceFile { modules })
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|s| &s.token);
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> VlogError {
        let (line, col) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        VlogError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> VlogResult<()> {
        match self.peek() {
            Some(Token::Sym(s)) if *s == sym => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected {:?}, found {:?}", sym, other))),
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_sym(&self, sym: Sym) -> bool {
        matches!(self.peek(), Some(Token::Sym(s)) if *s == sym)
    }

    fn expect_keyword(&mut self, kw: &str) -> VlogResult<()> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{}', found {:?}", kw, other))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn ident(&mut self) -> VlogResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {:?}", other))),
        }
    }

    // ------------------------------------------------------------------ modules

    fn module(&mut self) -> VlogResult<Module> {
        self.expect_keyword("module")?;
        let name = self.ident()?;
        let mut module = Module::new(name);
        if self.eat_sym(Sym::LParen) {
            if !self.at_sym(Sym::RParen) {
                loop {
                    let port = self.port()?;
                    module.ports.push(port);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        self.expect_sym(Sym::Semi)?;
        while !self.at_keyword("endmodule") {
            if self.at_end() {
                return Err(self.err("unexpected end of file inside module"));
            }
            let items = self.item()?;
            module.items.extend(items);
        }
        self.expect_keyword("endmodule")?;
        Ok(module)
    }

    fn port(&mut self) -> VlogResult<Port> {
        let dir = if self.eat_keyword("input") {
            PortDir::Input
        } else if self.eat_keyword("output") {
            PortDir::Output
        } else if self.eat_keyword("inout") {
            PortDir::Inout
        } else {
            return Err(self.err("expected port direction"));
        };
        let is_reg = if self.eat_keyword("reg") {
            true
        } else {
            self.eat_keyword("wire");
            false
        };
        let range = self.opt_range()?;
        let name = self.ident()?;
        Ok(Port {
            dir,
            is_reg,
            range,
            name,
        })
    }

    fn opt_range(&mut self) -> VlogResult<Option<Range>> {
        if self.eat_sym(Sym::LBracket) {
            let msb = self.expr()?;
            self.expect_sym(Sym::Colon)?;
            let lsb = self.expr()?;
            self.expect_sym(Sym::RBracket)?;
            Ok(Some(Range { msb, lsb }))
        } else {
            Ok(None)
        }
    }

    // ------------------------------------------------------------------ items

    fn attributes(&mut self) -> VlogResult<Vec<Attribute>> {
        let mut attrs = Vec::new();
        while self.eat_sym(Sym::AttrOpen) {
            loop {
                let name = self.ident()?;
                let value = if self.eat_sym(Sym::Assign) {
                    match self.bump().cloned() {
                        Some(Token::Ident(s)) => Some(s),
                        Some(Token::Str(s)) => Some(s),
                        Some(Token::Number(b)) => Some(b.to_dec_string()),
                        other => return Err(self.err(format!("bad attribute value {:?}", other))),
                    }
                } else {
                    None
                };
                attrs.push(Attribute { name, value });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::AttrClose)?;
        }
        Ok(attrs)
    }

    fn item(&mut self) -> VlogResult<Vec<Item>> {
        let attributes = self.attributes()?;
        if self.at_keyword("wire") || self.at_keyword("reg") || self.at_keyword("integer") {
            return self.decl_item(attributes);
        }
        if self.at_keyword("parameter") || self.at_keyword("localparam") {
            return self.param_item();
        }
        if self.eat_keyword("assign") {
            let lhs = self.lvalue()?;
            self.expect_sym(Sym::Assign)?;
            let rhs = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            return Ok(vec![Item::ContinuousAssign(Assign { lhs, rhs })]);
        }
        if self.eat_keyword("always") {
            self.expect_sym(Sym::At)?;
            let events = self.event_control()?;
            let body = self.stmt()?;
            return Ok(vec![Item::Always(AlwaysBlock { events, body })]);
        }
        if self.eat_keyword("initial") {
            let body = self.stmt()?;
            return Ok(vec![Item::Initial(body)]);
        }
        // Otherwise: module instantiation  `Type name ( ... ) ;`
        if matches!(self.peek(), Some(Token::Ident(_)))
            && matches!(self.peek_at(1), Some(Token::Ident(_)))
        {
            let module = self.ident()?;
            let name = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut connections = Vec::new();
            if !self.at_sym(Sym::RParen) {
                loop {
                    connections.push(self.connection()?);
                    if !self.eat_sym(Sym::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Sym::RParen)?;
            self.expect_sym(Sym::Semi)?;
            return Ok(vec![Item::Instance(Instance {
                module,
                name,
                connections,
            })]);
        }
        Err(self.err(format!(
            "unexpected token in module body: {:?}",
            self.peek()
        )))
    }

    fn decl_item(&mut self, attributes: Vec<Attribute>) -> VlogResult<Vec<Item>> {
        let kind = if self.eat_keyword("wire") {
            NetKind::Wire
        } else if self.eat_keyword("reg") {
            NetKind::Reg
        } else {
            self.expect_keyword("integer")?;
            NetKind::Integer
        };
        let range = self.opt_range()?;
        let mut items = Vec::new();
        loop {
            let name = self.ident()?;
            let mem_range = self.opt_range()?;
            let init = if self.eat_sym(Sym::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            items.push(Item::Decl(Decl {
                attributes: attributes.clone(),
                kind,
                range: range.clone(),
                name,
                mem_range,
                init,
            }));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::Semi)?;
        Ok(items)
    }

    fn param_item(&mut self) -> VlogResult<Vec<Item>> {
        let local = self.eat_keyword("localparam");
        if !local {
            self.expect_keyword("parameter")?;
        }
        // Optional range on parameters is accepted and ignored.
        let _ = self.opt_range()?;
        let mut items = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect_sym(Sym::Assign)?;
            let value = self.expr()?;
            items.push(Item::Param(ParamDecl { local, name, value }));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::Semi)?;
        Ok(items)
    }

    fn connection(&mut self) -> VlogResult<Connection> {
        if self.eat_sym(Sym::Dot) {
            let port = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let expr = if self.at_sym(Sym::RParen) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_sym(Sym::RParen)?;
            Ok(Connection {
                port: Some(port),
                expr,
            })
        } else {
            let expr = self.expr()?;
            Ok(Connection {
                port: None,
                expr: Some(expr),
            })
        }
    }

    fn event_control(&mut self) -> VlogResult<Vec<Event>> {
        // `@*` or `@(*)` or `@(ev or ev or ...)` / `@(ev, ev)`
        if self.eat_sym(Sym::Star) {
            return Ok(Vec::new());
        }
        self.expect_sym(Sym::LParen)?;
        if self.eat_sym(Sym::Star) {
            self.expect_sym(Sym::RParen)?;
            return Ok(Vec::new());
        }
        let mut events = Vec::new();
        loop {
            let edge = if self.eat_keyword("posedge") {
                Edge::Pos
            } else if self.eat_keyword("negedge") {
                Edge::Neg
            } else {
                Edge::Any
            };
            let expr = self.expr()?;
            events.push(Event { edge, expr });
            if self.eat_keyword("or") || self.eat_sym(Sym::Comma) {
                continue;
            }
            break;
        }
        self.expect_sym(Sym::RParen)?;
        Ok(events)
    }

    // ------------------------------------------------------------------ statements

    fn stmt(&mut self) -> VlogResult<Stmt> {
        if self.eat_keyword("begin") {
            let mut stmts = Vec::new();
            // Optional block label `: name`
            if self.eat_sym(Sym::Colon) {
                let _ = self.ident()?;
            }
            while !self.at_keyword("end") {
                if self.at_end() {
                    return Err(self.err("unexpected end of file in begin/end block"));
                }
                stmts.push(self.stmt()?);
            }
            self.expect_keyword("end")?;
            return Ok(Stmt::Block(stmts));
        }
        if self.eat_keyword("fork") {
            let mut stmts = Vec::new();
            while !self.at_keyword("join") {
                if self.at_end() {
                    return Err(self.err("unexpected end of file in fork/join block"));
                }
                stmts.push(self.stmt()?);
            }
            self.expect_keyword("join")?;
            return Ok(Stmt::Fork(stmts));
        }
        if self.eat_keyword("if") {
            self.expect_sym(Sym::LParen)?;
            let cond = self.expr()?;
            self.expect_sym(Sym::RParen)?;
            let then = Box::new(self.stmt()?);
            let other = if self.eat_keyword("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If { cond, then, other });
        }
        if self.eat_keyword("case") || self.at_keyword("casez") && self.eat_keyword("casez") {
            self.expect_sym(Sym::LParen)?;
            let expr = self.expr()?;
            self.expect_sym(Sym::RParen)?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.at_keyword("endcase") {
                if self.at_end() {
                    return Err(self.err("unexpected end of file in case statement"));
                }
                if self.eat_keyword("default") {
                    self.eat_sym(Sym::Colon);
                    default = Some(Box::new(self.stmt()?));
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.eat_sym(Sym::Comma) {
                    labels.push(self.expr()?);
                }
                self.expect_sym(Sym::Colon)?;
                let body = self.stmt()?;
                arms.push(CaseArm { labels, body });
            }
            self.expect_keyword("endcase")?;
            return Ok(Stmt::Case {
                expr,
                arms,
                default,
            });
        }
        if self.eat_keyword("for") {
            self.expect_sym(Sym::LParen)?;
            let init = self.plain_assign()?;
            self.expect_sym(Sym::Semi)?;
            let cond = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            let step = self.plain_assign()?;
            self.expect_sym(Sym::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init: Box::new(init),
                cond,
                step: Box::new(step),
                body,
            });
        }
        if self.eat_keyword("repeat") {
            self.expect_sym(Sym::LParen)?;
            let count = self.expr()?;
            self.expect_sym(Sym::RParen)?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::Repeat { count, body });
        }
        if let Some(Token::SysIdent(name)) = self.peek() {
            let name = name.clone();
            self.bump();
            let kind = TaskKind::from_name(&name)
                .ok_or_else(|| self.err(format!("unknown system task ${}", name)))?;
            let mut args = Vec::new();
            if self.eat_sym(Sym::LParen) {
                if !self.at_sym(Sym::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_sym(Sym::Comma) {
                            break;
                        }
                    }
                }
                self.expect_sym(Sym::RParen)?;
            }
            self.expect_sym(Sym::Semi)?;
            return Ok(Stmt::SystemTask(SystemTask { kind, args }));
        }
        if self.eat_sym(Sym::Semi) {
            return Ok(Stmt::Null);
        }
        // Blocking or non-blocking assignment.
        let lhs = self.lvalue()?;
        if self.eat_sym(Sym::NonBlock) {
            let rhs = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            Ok(Stmt::NonBlocking(Assign { lhs, rhs }))
        } else if self.eat_sym(Sym::Assign) {
            let rhs = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            Ok(Stmt::Blocking(Assign { lhs, rhs }))
        } else {
            Err(self.err("expected '=' or '<=' in assignment"))
        }
    }

    /// Parses `lhs = rhs` without the trailing semicolon (for-loop headers).
    fn plain_assign(&mut self) -> VlogResult<Assign> {
        let lhs = self.lvalue()?;
        self.expect_sym(Sym::Assign)?;
        let rhs = self.expr()?;
        Ok(Assign { lhs, rhs })
    }

    fn lvalue(&mut self) -> VlogResult<LValue> {
        if self.eat_sym(Sym::LBrace) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.lvalue()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat_sym(Sym::LBracket) {
            let first = self.expr()?;
            if self.eat_sym(Sym::Colon) {
                let lsb = self.expr()?;
                self.expect_sym(Sym::RBracket)?;
                Ok(LValue::Slice(name, first, lsb))
            } else {
                self.expect_sym(Sym::RBracket)?;
                Ok(LValue::Index(name, first))
            }
        } else {
            Ok(LValue::Ident(name))
        }
    }

    // ------------------------------------------------------------------ expressions

    fn expr(&mut self) -> VlogResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> VlogResult<Expr> {
        let cond = self.logical_or()?;
        if self.eat_sym(Sym::Question) {
            let then = self.ternary()?;
            self.expect_sym(Sym::Colon)?;
            let other = self.ternary()?;
            Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then),
                Box::new(other),
            ))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.logical_and()?;
        while self.eat_sym(Sym::PipePipe) {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinaryOp::LogicalOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.bit_or()?;
        while self.eat_sym(Sym::AmpAmp) {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary(BinaryOp::LogicalAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.bit_xor()?;
        while self.at_sym(Sym::Pipe) {
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.bit_and()?;
        while self.at_sym(Sym::Caret) {
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinaryOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.equality()?;
        while self.at_sym(Sym::Amp) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.eat_sym(Sym::EqEq) {
                BinaryOp::Eq
            } else if self.eat_sym(Sym::NotEq) {
                BinaryOp::Ne
            } else {
                break;
            };
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.shift()?;
        loop {
            let op = if self.eat_sym(Sym::Lt) {
                BinaryOp::Lt
            } else if self.eat_sym(Sym::Gt) {
                BinaryOp::Gt
            } else if self.eat_sym(Sym::Ge) {
                BinaryOp::Ge
            } else if self.at_sym(Sym::NonBlock) {
                // `<=` in expression position is less-than-or-equal.
                self.bump();
                BinaryOp::Le
            } else {
                break;
            };
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat_sym(Sym::Shl) {
                BinaryOp::Shl
            } else if self.eat_sym(Sym::Shr) {
                BinaryOp::Shr
            } else if self.eat_sym(Sym::AShr) {
                BinaryOp::AShr
            } else {
                break;
            };
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_sym(Sym::Plus) {
                BinaryOp::Add
            } else if self.eat_sym(Sym::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> VlogResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_sym(Sym::Star) {
                BinaryOp::Mul
            } else if self.eat_sym(Sym::Slash) {
                BinaryOp::Div
            } else if self.eat_sym(Sym::Percent) {
                BinaryOp::Rem
            } else {
                break;
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> VlogResult<Expr> {
        let op = if self.eat_sym(Sym::Tilde) {
            Some(UnaryOp::Not)
        } else if self.eat_sym(Sym::Bang) {
            Some(UnaryOp::LogicalNot)
        } else if self.eat_sym(Sym::Minus) {
            Some(UnaryOp::Neg)
        } else if self.eat_sym(Sym::Plus) {
            Some(UnaryOp::Plus)
        } else if self.at_sym(Sym::Amp) && !matches!(self.peek_at(1), Some(Token::Sym(Sym::Amp))) {
            self.bump();
            Some(UnaryOp::ReduceAnd)
        } else if self.at_sym(Sym::Pipe) && !matches!(self.peek_at(1), Some(Token::Sym(Sym::Pipe)))
        {
            self.bump();
            Some(UnaryOp::ReduceOr)
        } else if self.at_sym(Sym::Caret) {
            self.bump();
            Some(UnaryOp::ReduceXor)
        } else {
            None
        };
        if let Some(op) = op {
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> VlogResult<Expr> {
        let mut e = self.primary()?;
        while self.eat_sym(Sym::LBracket) {
            let first = self.expr()?;
            if self.eat_sym(Sym::Colon) {
                let lsb = self.expr()?;
                self.expect_sym(Sym::RBracket)?;
                e = Expr::Slice(Box::new(e), Box::new(first), Box::new(lsb));
            } else {
                self.expect_sym(Sym::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(first));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> VlogResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(b)) => {
                self.bump();
                Ok(Expr::Literal(b))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::StringLit(s))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                if name.starts_with('`') {
                    // Macro constants are resolved during elaboration; keep as ident.
                    return Ok(Expr::Ident(name));
                }
                Ok(Expr::Ident(name))
            }
            Some(Token::SysIdent(name)) => {
                self.bump();
                let kind = TaskKind::from_name(&name)
                    .ok_or_else(|| self.err(format!("unknown system function ${}", name)))?;
                let mut args = Vec::new();
                if self.eat_sym(Sym::LParen) {
                    if !self.at_sym(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                }
                Ok(Expr::SystemCall(kind, args))
            }
            Some(Token::Sym(Sym::LParen)) => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Sym(Sym::LBrace)) => {
                self.bump();
                let first = self.expr()?;
                // Replication: `{n{expr}}`
                if self.at_sym(Sym::LBrace) {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect_sym(Sym::RBrace)?;
                    self.expect_sym(Sym::RBrace)?;
                    return Ok(Expr::Replicate(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat_sym(Sym::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect_sym(Sym::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.err(format!("unexpected token in expression: {:?}", other))),
        }
    }
}

/// Parses a standalone constant expression (used in tests and tools).
///
/// # Errors
///
/// Returns a [`VlogError`] if the text is not a valid expression.
pub fn parse_expr(src: &str) -> VlogResult<Expr> {
    let tokens = crate::lexer::lex(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
    };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

/// Evaluates a constant expression containing only literals.
///
/// Identifiers are resolved through `lookup`; returns `None` if any identifier is
/// unknown or a non-constant construct is used.
pub fn const_eval(expr: &Expr, lookup: &dyn Fn(&str) -> Option<Bits>) -> Option<Bits> {
    match expr {
        Expr::Literal(b) => Some(b.clone()),
        Expr::Ident(n) => lookup(n),
        Expr::Unary(op, a) => {
            let a = const_eval(a, lookup)?;
            Some(match op {
                UnaryOp::Not => a.not(),
                UnaryOp::LogicalNot => Bits::from_bool(!a.to_bool()),
                UnaryOp::Neg => a.neg(),
                UnaryOp::Plus => a,
                UnaryOp::ReduceAnd => Bits::from_bool(a.reduce_and()),
                UnaryOp::ReduceOr => Bits::from_bool(a.reduce_or()),
                UnaryOp::ReduceXor => Bits::from_bool(a.reduce_xor()),
            })
        }
        Expr::Binary(op, a, b) => {
            let a = const_eval(a, lookup)?;
            let b = const_eval(b, lookup)?;
            Some(match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::Div => a.div(&b),
                BinaryOp::Rem => a.rem(&b),
                BinaryOp::And => a.and(&b),
                BinaryOp::Or => a.or(&b),
                BinaryOp::Xor => a.xor(&b),
                BinaryOp::Shl => a.shl(b.to_u64() as usize),
                BinaryOp::Shr => a.shr(b.to_u64() as usize),
                BinaryOp::AShr => a.ashr(b.to_u64() as usize),
                BinaryOp::LogicalAnd => Bits::from_bool(a.to_bool() && b.to_bool()),
                BinaryOp::LogicalOr => Bits::from_bool(a.to_bool() || b.to_bool()),
                BinaryOp::Eq => Bits::from_bool(a.ucmp(&b) == std::cmp::Ordering::Equal),
                BinaryOp::Ne => Bits::from_bool(a.ucmp(&b) != std::cmp::Ordering::Equal),
                BinaryOp::Lt => Bits::from_bool(a.ucmp(&b) == std::cmp::Ordering::Less),
                BinaryOp::Le => Bits::from_bool(a.ucmp(&b) != std::cmp::Ordering::Greater),
                BinaryOp::Gt => Bits::from_bool(a.ucmp(&b) == std::cmp::Ordering::Greater),
                BinaryOp::Ge => Bits::from_bool(a.ucmp(&b) != std::cmp::Ordering::Less),
            })
        }
        Expr::Ternary(c, a, b) => {
            let c = const_eval(c, lookup)?;
            if c.to_bool() {
                const_eval(a, lookup)
            } else {
                const_eval(b, lookup)
            }
        }
        Expr::Concat(parts) => {
            let mut acc: Option<Bits> = None;
            for p in parts {
                let v = const_eval(p, lookup)?;
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.concat(&v),
                });
            }
            acc
        }
        Expr::Replicate(n, e) => {
            let n = const_eval(n, lookup)?.to_u64() as usize;
            let v = const_eval(e, lookup)?;
            Some(v.replicate(n))
        }
        Expr::Slice(e, hi, lo) => {
            let v = const_eval(e, lookup)?;
            let hi = const_eval(hi, lookup)?.to_u64() as usize;
            let lo = const_eval(lo, lookup)?.to_u64() as usize;
            Some(v.slice(hi, lo))
        }
        Expr::Index(e, i) => {
            let v = const_eval(e, lookup)?;
            let i = const_eval(i, lookup)?.to_u64() as usize;
            Some(Bits::from_bool(v.bit(i)))
        }
        Expr::StringLit(_) | Expr::SystemCall(_, _) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parses_simple_module() {
        let src = r#"
            module Counter(input wire clock, output wire [7:0] out);
                reg [7:0] count = 0;
                always @(posedge clock) count <= count + 1;
                assign out = count;
            endmodule
        "#;
        let file = parse(src).unwrap();
        assert_eq!(file.modules.len(), 1);
        let m = &file.modules[0];
        assert_eq!(m.name, "Counter");
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[1].dir, PortDir::Output);
        assert_eq!(m.items.len(), 3);
    }

    #[test]
    fn parses_figure_1_example() {
        // The example from Figure 1 of the paper (minus the undefined SubModule).
        let src = r#"
            module Module(input wire clock, output wire [31:0] res);
                wire [31:0] x = 1, y = x + 1;
                reg [63:0] r = 0;
                always @(posedge clock) begin
                    $display(r);
                    r = y;
                    $display(r);
                    r <= 3;
                    $display(r);
                end
                always @(posedge clock) fork
                    $display(r);
                join
                assign res = r[47:16] & 32'hf0f0f0f0;
            endmodule
        "#;
        let file = parse(src).unwrap();
        let m = &file.modules[0];
        let always_count = m
            .items
            .iter()
            .filter(|i| matches!(i, Item::Always(_)))
            .count();
        assert_eq!(always_count, 2);
    }

    #[test]
    fn parses_file_io_example() {
        // Figure 2 of the paper.
        let src = r#"
            module M(input wire clock);
                integer fd = $fopen("path/to/file");
                reg [31:0] r = 0;
                reg [127:0] sum = 0;
                always @(posedge clock) begin
                    $fread(fd, r);
                    if ($feof(fd)) begin
                        $display(sum);
                        $finish(0);
                    end else
                        sum <= sum + r;
                end
            endmodule
        "#;
        let file = parse(src).unwrap();
        let m = &file.modules[0];
        assert!(m
            .items
            .iter()
            .any(|i| matches!(i, Item::Always(b) if b.body.contains_system_task())));
    }

    #[test]
    fn parses_instances() {
        let src = r#"
            module Top(input wire clock);
                wire [7:0] v;
                Sub s(.clock(clock), .value(v));
                Sub2 t(clock, v);
            endmodule
        "#;
        let file = parse(src).unwrap();
        let instances: Vec<_> = file.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst),
                _ => None,
            })
            .collect();
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].connections[0].port.as_deref(), Some("clock"));
        assert!(instances[1].connections[0].port.is_none());
    }

    #[test]
    fn parses_case_and_for() {
        let src = r#"
            module M(input wire clock);
                reg [3:0] s = 0;
                integer i = 0;
                reg [7:0] mem [0:15];
                always @(posedge clock) begin
                    case (s)
                        0: s <= 1;
                        1, 2: s <= 3;
                        default: s <= 0;
                    endcase
                    for (i = 0; i < 16; i = i + 1)
                        mem[i] <= 0;
                    repeat (4) s <= s + 1;
                end
            endmodule
        "#;
        let file = parse(src).unwrap();
        assert_eq!(file.modules[0].name, "M");
    }

    #[test]
    fn parses_attributes_on_decls() {
        let src = r#"
            module Root(input wire clock);
                (* non_volatile *) reg [31:0] x = 0;
                reg [31:0] y = 0;
                always @(posedge clock) if (x > 10) $yield;
            endmodule
        "#;
        let file = parse(src).unwrap();
        let decls: Vec<_> = file.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Decl(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(decls[0].attributes[0].name, "non_volatile");
        assert!(decls[1].attributes.is_empty());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let v = const_eval(&e, &|_| None).unwrap();
        assert_eq!(v.to_u64(), 7);
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 9);
        let e = parse_expr("1 << 4 | 1").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 17);
        let e = parse_expr("2 < 3 ? 10 : 20").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 10);
    }

    #[test]
    fn const_eval_concat_and_replicate() {
        let e = parse_expr("{4'hA, 4'h5}").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 0xa5);
        let e = parse_expr("{4{2'b10}}").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 0xaa);
    }

    #[test]
    fn const_eval_slice_and_index() {
        let e = parse_expr("8'hab[7:4]").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 0xa);
        let e = parse_expr("8'h80[7]").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 1);
    }

    #[test]
    fn reports_parse_error_position() {
        let err = parse("module M(; endmodule").unwrap_err();
        assert!(matches!(err, VlogError::Parse { .. }));
    }

    #[test]
    fn reduction_vs_binary_ops() {
        let e = parse_expr("&4'hF").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 1);
        let e = parse_expr("4'hF & 4'h3").unwrap();
        assert_eq!(const_eval(&e, &|_| None).unwrap().to_u64(), 3);
    }
}
