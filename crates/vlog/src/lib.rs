//! # synergy-vlog
//!
//! Verilog frontend for the SYNERGY FPGA-virtualization reproduction.
//!
//! This crate provides everything needed to go from Verilog source text to an
//! elaborated, width-resolved design that the rest of the system (interpreter,
//! compiler transformations, synthesis estimator) consumes:
//!
//! * [`Bits`] — arbitrary-width two-state values.
//! * [`lexer`] and [`parser`] — source text to [`ast::SourceFile`].
//! * [`ast`] — the syntax tree of the supported Verilog subset.
//! * [`elaborate`] — module-hierarchy flattening, parameter folding, loop
//!   unrolling and width resolution producing an [`elaborate::ElabModule`].
//! * [`printer`] — turning ASTs back into Verilog text (used by the hypervisor
//!   when coalescing sub-programs, §4.1 of the paper).
//!
//! # Example
//!
//! ```
//! use synergy_vlog::parse;
//!
//! let src = r#"
//!     module Counter(input wire clock, output wire [7:0] out);
//!         reg [7:0] count = 0;
//!         always @(posedge clock) count <= count + 1;
//!         assign out = count;
//!     endmodule
//! "#;
//! let file = parse(src)?;
//! assert_eq!(file.modules[0].name, "Counter");
//! # Ok::<(), synergy_vlog::VlogError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod bits;
pub mod elaborate;
mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use bits::Bits;
pub use error::{VlogError, VlogResult};

/// Parses Verilog source text into a [`ast::SourceFile`].
///
/// # Errors
///
/// Returns a [`VlogError`] if the source cannot be lexed or parsed.
pub fn parse(src: &str) -> VlogResult<ast::SourceFile> {
    let tokens = lexer::lex(src)?;
    parser::parse_tokens(&tokens)
}

/// Parses and elaborates Verilog source, returning the flattened design rooted at
/// `top`.
///
/// # Errors
///
/// Returns a [`VlogError`] if parsing fails or the design cannot be elaborated
/// (missing modules, unresolved names, non-constant loop bounds, ...).
pub fn compile(src: &str, top: &str) -> VlogResult<elaborate::ElabModule> {
    let file = parse(src)?;
    elaborate::elaborate(&file, top)
}
