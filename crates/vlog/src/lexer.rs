//! Lexer for the Verilog subset.
//!
//! Produces a flat token stream with line/column positions. Comments (`//` and
//! `/* */`) and whitespace are skipped. Sized literals such as `32'hdeadbeef` are
//! lexed as a single [`Token::Number`] carrying the resolved [`Bits`] value.

use crate::error::{VlogError, VlogResult};
use crate::Bits;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// System task/function name without the `$`, e.g. `display`.
    SysIdent(String),
    /// Numeric literal with resolved width and value.
    Number(Bits),
    /// String literal contents (quotes removed, escapes resolved).
    Str(String),
    /// A punctuation or operator symbol.
    Sym(Sym),
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Colon,
    Comma,
    Dot,
    Hash,
    At,
    Question,
    Assign,   // =
    NonBlock, // <=  (also less-equal; disambiguated by the parser)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AShr,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Ge,
    AttrOpen,  // (*
    AttrClose, // *)
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{}", s),
            Token::SysIdent(s) => write!(f, "${}", s),
            Token::Number(b) => write!(f, "{:?}", b),
            Token::Str(s) => write!(f, "\"{}\"", s),
            Token::Sym(s) => write!(f, "{:?}", s),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// Lexes `src` into a token stream.
///
/// # Errors
///
/// Returns [`VlogError::Lex`] on unterminated strings or comments, malformed sized
/// literals, or unexpected characters.
pub fn lex(src: &str) -> VlogResult<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> VlogError {
        VlogError::Lex {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn run(mut self) -> VlogResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let token = if c.is_ascii_alphabetic() || c == '_' || c == '\\' {
                self.lex_ident()?
            } else if c == '$' {
                self.bump();
                let name = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                Token::SysIdent(name)
            } else if c.is_ascii_digit()
                || (c == '\'' && self.peek2().is_some_and(|d| "bodhBODH".contains(d)))
            {
                self.lex_number()?
            } else if c == '"' {
                self.lex_string()?
            } else if c == '`' {
                // Treat compiler directives / macro uses as identifiers prefixed with `.
                self.bump();
                let name = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                Token::Ident(format!("`{}", name))
            } else {
                self.lex_symbol()?
            };
            out.push(Spanned { token, line, col });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> VlogResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn lex_ident(&mut self) -> VlogResult<Token> {
        if self.peek() == Some('\\') {
            // Escaped identifier: backslash up to whitespace.
            self.bump();
            let name = self.take_while(|c| !c.is_whitespace());
            return Ok(Token::Ident(name));
        }
        let name = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$');
        Ok(Token::Ident(name))
    }

    fn lex_string(&mut self) -> VlogResult<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(c) => s.push(c),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
        Ok(Token::Str(s))
    }

    fn lex_number(&mut self) -> VlogResult<Token> {
        // Optional size, then optional 'b/'o/'d/'h base, then digits.
        let size_digits = self.take_while(|c| c.is_ascii_digit() || c == '_');
        let explicit_size: Option<usize> = if size_digits.is_empty() {
            None
        } else {
            Some(
                size_digits
                    .replace('_', "")
                    .parse()
                    .map_err(|_| self.err("invalid literal size"))?,
            )
        };
        if self.peek() == Some('\'') {
            self.bump();
            let base_ch = self
                .bump()
                .ok_or_else(|| self.err("missing base in sized literal"))?;
            let base = match base_ch.to_ascii_lowercase() {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                other => return Err(self.err(format!("invalid literal base '{}'", other))),
            };
            let digits = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
            let width = explicit_size.unwrap_or(32);
            let bits = Bits::parse_radix(width, base, &digits).ok_or_else(|| {
                self.err(format!("invalid digits '{}' for base {}", digits, base))
            })?;
            Ok(Token::Number(bits))
        } else {
            // Plain decimal literal: unsized, 32 bits.
            let digits = size_digits.replace('_', "");
            let bits = Bits::parse_radix(32, 10, &digits)
                .ok_or_else(|| self.err("invalid decimal literal"))?;
            Ok(Token::Number(bits))
        }
    }

    fn lex_symbol(&mut self) -> VlogResult<Token> {
        let c = self.bump().unwrap();
        let sym = match c {
            '(' => {
                if self.peek() == Some('*') && self.peek2() != Some(')') {
                    self.bump();
                    Sym::AttrOpen
                } else {
                    Sym::LParen
                }
            }
            ')' => Sym::RParen,
            '[' => Sym::LBracket,
            ']' => Sym::RBracket,
            '{' => Sym::LBrace,
            '}' => Sym::RBrace,
            ';' => Sym::Semi,
            ':' => Sym::Colon,
            ',' => Sym::Comma,
            '.' => Sym::Dot,
            '#' => Sym::Hash,
            '@' => Sym::At,
            '?' => Sym::Question,
            '+' => Sym::Plus,
            '-' => Sym::Minus,
            '*' => {
                if self.peek() == Some(')') {
                    self.bump();
                    Sym::AttrClose
                } else {
                    Sym::Star
                }
            }
            '/' => Sym::Slash,
            '%' => Sym::Percent,
            '~' => Sym::Tilde,
            '^' => Sym::Caret,
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    Sym::AmpAmp
                } else {
                    Sym::Amp
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    Sym::PipePipe
                } else {
                    Sym::Pipe
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Sym::NotEq
                } else {
                    Sym::Bang
                }
            }
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Sym::EqEq
                } else {
                    Sym::Assign
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Sym::NonBlock
                } else if self.peek() == Some('<') {
                    self.bump();
                    Sym::Shl
                } else {
                    Sym::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Sym::Ge
                } else if self.peek() == Some('>') {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        Sym::AShr
                    } else {
                        Sym::Shr
                    }
                } else {
                    Sym::Gt
                }
            }
            other => return Err(self.err(format!("unexpected character '{}'", other))),
        };
        let _ = self.src;
        Ok(Token::Sym(sym))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        assert_eq!(
            toks("module foo endmodule"),
            vec![
                Token::Ident("module".into()),
                Token::Ident("foo".into()),
                Token::Ident("endmodule".into())
            ]
        );
    }

    #[test]
    fn lexes_sized_literals() {
        let t = toks("32'hdead_beef 8'b1010 4'd9 16'o17");
        match &t[0] {
            Token::Number(b) => {
                assert_eq!(b.width(), 32);
                assert_eq!(b.to_u64(), 0xdeadbeef);
            }
            other => panic!("unexpected {:?}", other),
        }
        match &t[1] {
            Token::Number(b) => assert_eq!((b.width(), b.to_u64()), (8, 0b1010)),
            other => panic!("unexpected {:?}", other),
        }
        match &t[2] {
            Token::Number(b) => assert_eq!((b.width(), b.to_u64()), (4, 9)),
            other => panic!("unexpected {:?}", other),
        }
        match &t[3] {
            Token::Number(b) => assert_eq!((b.width(), b.to_u64()), (16, 0o17)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn lexes_unsized_decimal() {
        match &toks("1234")[0] {
            Token::Number(b) => assert_eq!((b.width(), b.to_u64()), (32, 1234)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a <= b >>> 2"),
            vec![
                Token::Ident("a".into()),
                Token::Sym(Sym::NonBlock),
                Token::Ident("b".into()),
                Token::Sym(Sym::AShr),
                Token::Number(Bits::from_u64(32, 2)),
            ]
        );
        assert_eq!(
            toks("&& || == != >="),
            vec![
                Token::Sym(Sym::AmpAmp),
                Token::Sym(Sym::PipePipe),
                Token::Sym(Sym::EqEq),
                Token::Sym(Sym::NotEq),
                Token::Sym(Sym::Ge),
            ]
        );
    }

    #[test]
    fn lexes_attributes() {
        assert_eq!(
            toks("(* non_volatile *) reg"),
            vec![
                Token::Sym(Sym::AttrOpen),
                Token::Ident("non_volatile".into()),
                Token::Sym(Sym::AttrClose),
                Token::Ident("reg".into()),
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("a // line comment\n /* block\n comment */ b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""hello\nworld""#),
            vec![Token::Str("hello\nworld".into())]
        );
    }

    #[test]
    fn lexes_system_idents() {
        assert_eq!(
            toks("$display(sum)"),
            vec![
                Token::SysIdent("display".into()),
                Token::Sym(Sym::LParen),
                Token::Ident("sum".into()),
                Token::Sym(Sym::RParen),
            ]
        );
    }

    #[test]
    fn reports_errors_with_position() {
        let err = lex("a\n  \u{7}").unwrap_err();
        let msg = format!("{}", err);
        assert!(msg.contains("2:"), "error should mention line 2: {}", msg);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
    }
}
