//! Error types for the Verilog frontend.

use std::fmt;

/// Result alias used throughout the frontend.
pub type VlogResult<T> = Result<T, VlogError>;

/// Errors produced by lexing, parsing, or elaborating Verilog source.
#[derive(Debug, Clone, PartialEq)]
pub enum VlogError {
    /// Lexical error at a source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Parse error at a source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Elaboration error (unresolved names, bad widths, missing modules, ...).
    Elaborate(String),
    /// A construct outside the supported subset was used.
    Unsupported(String),
}

impl fmt::Display for VlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VlogError::Lex { line, col, msg } => {
                write!(f, "lex error at {}:{}: {}", line, col, msg)
            }
            VlogError::Parse { line, col, msg } => {
                write!(f, "parse error at {}:{}: {}", line, col, msg)
            }
            VlogError::Elaborate(msg) => write!(f, "elaboration error: {}", msg),
            VlogError::Unsupported(msg) => write!(f, "unsupported construct: {}", msg),
        }
    }
}

impl std::error::Error for VlogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = VlogError::Parse {
            line: 3,
            col: 7,
            msg: "expected ';'".into(),
        };
        assert_eq!(format!("{}", e), "parse error at 3:7: expected ';'");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(VlogError::Elaborate("x".into()));
        assert!(format!("{}", e).contains("elaboration"));
    }
}
