//! Elaboration: from a parsed [`SourceFile`] to a flattened, width-resolved design.
//!
//! Elaboration performs the front-end work that Cascade does before handing
//! sub-programs to engines (§2.1 of the paper):
//!
//! * parameters and localparams are constant-folded and substituted,
//! * module instances are inlined into the root module with `inst__`-prefixed
//!   names (the runtime manages the user design as a single sub-program; the
//!   hypervisor still coalesces *applications* as in §4.1),
//! * wire initialisers become continuous assignments,
//! * register initialisers are constant-folded into reset values,
//! * every variable gets a resolved width (and depth for 1-D memories).

use crate::ast::*;
use crate::error::{VlogError, VlogResult};
use crate::parser::const_eval;
use crate::Bits;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Resolved information about one variable in the elaborated design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarInfo {
    /// Variable name (hierarchical names use `__` separators).
    pub name: String,
    /// Declaration kind.
    pub kind: NetKind,
    /// Bit width of the variable (element width for memories).
    pub width: usize,
    /// Number of elements for 1-D memories; `None` for scalars.
    pub depth: Option<usize>,
    /// Constant initial value, if one was declared (registers only).
    pub init: Option<Bits>,
    /// Whether the declaration carried a `(* non_volatile *)` attribute.
    pub non_volatile: bool,
    /// Port direction if the variable is a port of the root module.
    pub port: Option<PortDir>,
}

impl VarInfo {
    /// Total number of state bits held by this variable.
    pub fn state_bits(&self) -> usize {
        self.width * self.depth.unwrap_or(1)
    }

    /// `true` if the variable holds sequential state (reg/integer).
    pub fn is_register(&self) -> bool {
        matches!(self.kind, NetKind::Reg | NetKind::Integer)
    }
}

/// A flattened, elaborated module: the unit consumed by the interpreter, the
/// SYNERGY transformations, and the synthesis estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ElabModule {
    /// Root module name.
    pub name: String,
    /// Variables by name.
    pub vars: BTreeMap<String, VarInfo>,
    /// Continuous assignments in dependency order as written.
    pub assigns: Vec<Assign>,
    /// Procedural `always` blocks.
    pub always: Vec<AlwaysBlock>,
    /// `initial` blocks.
    pub initials: Vec<Stmt>,
}

impl ElabModule {
    /// Looks up a variable.
    pub fn var(&self, name: &str) -> Option<&VarInfo> {
        self.vars.get(name)
    }

    /// Width of a variable, or 32 if unknown (matches Verilog's self-determined
    /// default for integers).
    pub fn width_of_var(&self, name: &str) -> usize {
        self.vars.get(name).map(|v| v.width).unwrap_or(32)
    }

    /// Names of the root module's input ports.
    pub fn inputs(&self) -> Vec<&VarInfo> {
        self.vars
            .values()
            .filter(|v| v.port == Some(PortDir::Input))
            .collect()
    }

    /// Names of the root module's output ports.
    pub fn outputs(&self) -> Vec<&VarInfo> {
        self.vars
            .values()
            .filter(|v| matches!(v.port, Some(PortDir::Output) | Some(PortDir::Inout)))
            .collect()
    }

    /// All register (stateful) variables.
    pub fn registers(&self) -> Vec<&VarInfo> {
        self.vars.values().filter(|v| v.is_register()).collect()
    }

    /// Total number of architectural state bits (sum over registers and memories).
    pub fn total_state_bits(&self) -> usize {
        self.registers().iter().map(|v| v.state_bits()).sum()
    }

    /// Computes the width of an expression in the context of this module.
    ///
    /// Memory element selects (`mem[i]` where `mem` is a 1-D memory) resolve to
    /// the element width rather than a single bit.
    pub fn width_of(&self, expr: &Expr) -> usize {
        if let Expr::Index(base, _) = expr {
            if let Expr::Ident(n) = base.as_ref() {
                if let Some(v) = self.vars.get(n) {
                    if v.depth.is_some() {
                        return v.width;
                    }
                }
            }
        }
        width_of(expr, &|name| self.vars.get(name).map(|v| v.width))
    }
}

/// Computes an expression's width given a variable-width lookup.
pub fn width_of(expr: &Expr, lookup: &dyn Fn(&str) -> Option<usize>) -> usize {
    match expr {
        Expr::Literal(b) => b.width(),
        Expr::StringLit(s) => (s.len() * 8).max(1),
        Expr::Ident(n) => lookup(n).unwrap_or(32),
        Expr::Index(base, _) => match base.as_ref() {
            // Memory element select keeps the element width; bit select is 1 bit.
            Expr::Ident(n) if lookup(n).is_some() => {
                // Scalar bit-select: 1. Memory selects are resolved by the
                // caller (interpreter) which knows about depths; default to the
                // element width so memory reads keep their width.
                1
            }
            _ => 1,
        },
        Expr::Slice(_, hi, lo) => {
            let hi = const_eval(hi, &|_| None).map(|b| b.to_u64()).unwrap_or(0);
            let lo = const_eval(lo, &|_| None).map(|b| b.to_u64()).unwrap_or(0);
            (hi.saturating_sub(lo) as usize) + 1
        }
        Expr::Unary(op, a) => match op {
            UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => width_of(a, lookup),
            _ => 1,
        },
        Expr::Binary(op, a, b) => {
            if op.is_comparison() {
                1
            } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr) {
                width_of(a, lookup)
            } else {
                width_of(a, lookup).max(width_of(b, lookup))
            }
        }
        Expr::Ternary(_, a, b) => width_of(a, lookup).max(width_of(b, lookup)),
        Expr::Concat(parts) => parts.iter().map(|p| width_of(p, lookup)).sum(),
        Expr::Replicate(n, e) => {
            let n = const_eval(n, &|_| None).map(|b| b.to_u64()).unwrap_or(1) as usize;
            n * width_of(e, lookup)
        }
        Expr::SystemCall(kind, _) => match kind {
            TaskKind::Feof => 1,
            TaskKind::Time => 64,
            _ => 32,
        },
    }
}

/// Elaborates `file` rooted at module `top`.
///
/// # Errors
///
/// Returns [`VlogError::Elaborate`] when the top module is missing, an instance
/// references an unknown module, a name is redeclared or undeclared, or a range
/// bound is not a compile-time constant.
pub fn elaborate(file: &SourceFile, top: &str) -> VlogResult<ElabModule> {
    let top_module = file
        .module(top)
        .ok_or_else(|| VlogError::Elaborate(format!("top module '{}' not found", top)))?;
    let mut elab = ElabModule {
        name: top.to_string(),
        ..Default::default()
    };
    let mut ctx = Ctx { file, depth: 0 };
    ctx.flatten(top_module, "", &mut elab, &BTreeMap::new())?;
    check_names(&elab)?;
    Ok(elab)
}

struct Ctx<'a> {
    file: &'a SourceFile,
    depth: usize,
}

const MAX_INSTANCE_DEPTH: usize = 32;

impl<'a> Ctx<'a> {
    /// Inlines `module` into `elab`, prefixing all local names with `prefix`.
    /// `port_map` maps the module's port names to already-declared parent names.
    fn flatten(
        &mut self,
        module: &Module,
        prefix: &str,
        elab: &mut ElabModule,
        port_map: &BTreeMap<String, String>,
    ) -> VlogResult<()> {
        if self.depth > MAX_INSTANCE_DEPTH {
            return Err(VlogError::Elaborate(format!(
                "instance nesting exceeds {} levels (recursive instantiation?)",
                MAX_INSTANCE_DEPTH
            )));
        }
        // Pass 1: collect parameters (constant fold in declaration order).
        let mut params: BTreeMap<String, Bits> = BTreeMap::new();
        for item in &module.items {
            if let Item::Param(p) = item {
                let v = const_eval(&p.value, &|n| params.get(n).cloned()).ok_or_else(|| {
                    VlogError::Elaborate(format!("parameter '{}' is not constant", p.name))
                })?;
                params.insert(p.name.clone(), v);
            }
        }

        // Renaming: local name -> flattened name.
        let rename = |name: &str| -> String {
            if let Some(mapped) = port_map.get(name) {
                mapped.clone()
            } else {
                format!("{}{}", prefix, name)
            }
        };

        // Pass 2: ports. For the root module, ports become variables. For nested
        // instances the port_map already routes them to parent nets, except
        // unconnected ports which become local nets.
        for port in &module.ports {
            let width = self.range_width(&port.range, &params)?;
            let flat = rename(&port.name);
            if port_map.contains_key(&port.name) {
                // Connected to a parent net: nothing to declare.
                continue;
            }
            let kind = if port.is_reg {
                NetKind::Reg
            } else {
                NetKind::Wire
            };
            let info = VarInfo {
                name: flat.clone(),
                kind,
                width,
                depth: None,
                init: None,
                non_volatile: false,
                port: if prefix.is_empty() {
                    Some(port.dir)
                } else {
                    None
                },
            };
            insert_var(elab, info)?;
        }

        // Pass 3: declarations, assigns, always/initial blocks, instances.
        for item in &module.items {
            match item {
                Item::Param(_) => {}
                Item::Decl(d) => {
                    let width = match d.kind {
                        NetKind::Integer => 32,
                        _ => self.range_width(&d.range, &params)?,
                    };
                    let depth = match &d.mem_range {
                        Some(r) => Some(self.mem_depth(r, &params)?),
                        None => None,
                    };
                    let flat = rename(&d.name);
                    let non_volatile = d.attributes.iter().any(|a| a.name == "non_volatile");
                    // If this declaration refines an existing port variable (e.g.
                    // `output reg [7:0] x;` plus `reg [7:0] x;`), merge instead of
                    // erroring.
                    let init_expr = d
                        .init
                        .as_ref()
                        .map(|e| self.rewrite_expr(e, &params, &rename));
                    // Re-declaring a port body (`output reg [7:0] x; ... reg [7:0] x;`)
                    // merges with the port variable; any other redeclaration is an error.
                    let redeclares_port = elab
                        .vars
                        .get(&flat)
                        .map(|v| v.port.is_some())
                        .unwrap_or(false);
                    if elab.vars.contains_key(&flat) && !redeclares_port {
                        return Err(VlogError::Elaborate(format!(
                            "variable '{}' declared more than once",
                            flat
                        )));
                    }
                    match d.kind {
                        NetKind::Wire => {
                            let existing = elab.vars.contains_key(&flat);
                            if !existing {
                                insert_var(
                                    elab,
                                    VarInfo {
                                        name: flat.clone(),
                                        kind: NetKind::Wire,
                                        width,
                                        depth,
                                        init: None,
                                        non_volatile,
                                        port: None,
                                    },
                                )?;
                            }
                            if let Some(e) = init_expr {
                                elab.assigns.push(Assign {
                                    lhs: LValue::Ident(flat),
                                    rhs: e,
                                });
                            }
                        }
                        NetKind::Reg | NetKind::Integer => {
                            // Constant initialisers become reset values. Non-constant
                            // initialisers (e.g. `integer fd = $fopen("...")`, as in
                            // Figure 2 of the paper) become an implicit initial block.
                            let mut init = None;
                            if let Some(e) = &init_expr {
                                match const_eval(e, &|n| params.get(n).cloned()) {
                                    Some(b) => init = Some(b.resize(width)),
                                    None => elab.initials.push(Stmt::Blocking(Assign {
                                        lhs: LValue::Ident(flat.clone()),
                                        rhs: e.clone(),
                                    })),
                                }
                            }
                            if let Some(existing) = elab.vars.get_mut(&flat) {
                                existing.kind = d.kind;
                                existing.init = init;
                                existing.non_volatile |= non_volatile;
                            } else {
                                insert_var(
                                    elab,
                                    VarInfo {
                                        name: flat,
                                        kind: d.kind,
                                        width,
                                        depth,
                                        init,
                                        non_volatile,
                                        port: None,
                                    },
                                )?;
                            }
                        }
                    }
                }
                Item::ContinuousAssign(a) => {
                    elab.assigns.push(Assign {
                        lhs: self.rewrite_lvalue(&a.lhs, &params, &rename),
                        rhs: self.rewrite_expr(&a.rhs, &params, &rename),
                    });
                }
                Item::Always(b) => {
                    elab.always.push(AlwaysBlock {
                        events: b
                            .events
                            .iter()
                            .map(|e| Event {
                                edge: e.edge,
                                expr: self.rewrite_expr(&e.expr, &params, &rename),
                            })
                            .collect(),
                        body: self.rewrite_stmt(&b.body, &params, &rename),
                    });
                }
                Item::Initial(s) => {
                    elab.initials.push(self.rewrite_stmt(s, &params, &rename));
                }
                Item::Instance(inst) => {
                    let sub = self.file.module(&inst.module).ok_or_else(|| {
                        VlogError::Elaborate(format!(
                            "instance '{}' references unknown module '{}'",
                            inst.name, inst.module
                        ))
                    })?;
                    let sub_prefix = format!("{}{}__", prefix, inst.name);
                    let mut sub_map = BTreeMap::new();
                    for (idx, conn) in inst.connections.iter().enumerate() {
                        let port = match &conn.port {
                            Some(p) => sub.port(p).ok_or_else(|| {
                                VlogError::Elaborate(format!(
                                    "module '{}' has no port '{}'",
                                    sub.name, p
                                ))
                            })?,
                            None => sub.ports.get(idx).ok_or_else(|| {
                                VlogError::Elaborate(format!(
                                    "too many positional connections on instance '{}'",
                                    inst.name
                                ))
                            })?,
                        };
                        let Some(expr) = &conn.expr else { continue };
                        let expr = self.rewrite_expr(expr, &params, &rename);
                        match expr {
                            // A plain identifier connection aliases the parent net.
                            Expr::Ident(parent_net) => {
                                sub_map.insert(port.name.clone(), parent_net);
                            }
                            other => {
                                // Create an intermediate net and a continuous assign.
                                let net = format!("{}{}", sub_prefix, port.name);
                                let width = self.range_width(&port.range, &params)?;
                                insert_var(
                                    elab,
                                    VarInfo {
                                        name: net.clone(),
                                        kind: NetKind::Wire,
                                        width,
                                        depth: None,
                                        init: None,
                                        non_volatile: false,
                                        port: None,
                                    },
                                )?;
                                match port.dir {
                                    PortDir::Input => elab.assigns.push(Assign {
                                        lhs: LValue::Ident(net.clone()),
                                        rhs: other,
                                    }),
                                    PortDir::Output | PortDir::Inout => {
                                        return Err(VlogError::Elaborate(format!(
                                            "output port '{}' of instance '{}' must connect to a simple net",
                                            port.name, inst.name
                                        )))
                                    }
                                }
                                sub_map.insert(port.name.clone(), net);
                            }
                        }
                    }
                    self.depth += 1;
                    self.flatten(sub, &sub_prefix, elab, &sub_map)?;
                    self.depth -= 1;
                }
            }
        }
        Ok(())
    }

    fn range_width(
        &self,
        range: &Option<Range>,
        params: &BTreeMap<String, Bits>,
    ) -> VlogResult<usize> {
        match range {
            None => Ok(1),
            Some(r) => {
                let msb = const_eval(&r.msb, &|n| params.get(n).cloned())
                    .ok_or_else(|| VlogError::Elaborate("range msb is not constant".into()))?
                    .to_u64() as i64;
                let lsb = const_eval(&r.lsb, &|n| params.get(n).cloned())
                    .ok_or_else(|| VlogError::Elaborate("range lsb is not constant".into()))?
                    .to_u64() as i64;
                Ok(((msb - lsb).unsigned_abs() as usize) + 1)
            }
        }
    }

    fn mem_depth(&self, range: &Range, params: &BTreeMap<String, Bits>) -> VlogResult<usize> {
        let a = const_eval(&range.msb, &|n| params.get(n).cloned())
            .ok_or_else(|| VlogError::Elaborate("memory bound is not constant".into()))?
            .to_u64() as i64;
        let b = const_eval(&range.lsb, &|n| params.get(n).cloned())
            .ok_or_else(|| VlogError::Elaborate("memory bound is not constant".into()))?
            .to_u64() as i64;
        Ok(((a - b).unsigned_abs() as usize) + 1)
    }

    fn rewrite_expr(
        &self,
        expr: &Expr,
        params: &BTreeMap<String, Bits>,
        rename: &dyn Fn(&str) -> String,
    ) -> Expr {
        match expr {
            Expr::Ident(n) => {
                if let Some(v) = params.get(n) {
                    Expr::Literal(v.clone())
                } else {
                    Expr::Ident(rename(n))
                }
            }
            Expr::Literal(_) | Expr::StringLit(_) => expr.clone(),
            Expr::Index(a, b) => Expr::Index(
                Box::new(self.rewrite_expr(a, params, rename)),
                Box::new(self.rewrite_expr(b, params, rename)),
            ),
            Expr::Slice(a, b, c) => Expr::Slice(
                Box::new(self.rewrite_expr(a, params, rename)),
                Box::new(self.rewrite_expr(b, params, rename)),
                Box::new(self.rewrite_expr(c, params, rename)),
            ),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(self.rewrite_expr(a, params, rename))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.rewrite_expr(a, params, rename)),
                Box::new(self.rewrite_expr(b, params, rename)),
            ),
            Expr::Ternary(a, b, c) => Expr::Ternary(
                Box::new(self.rewrite_expr(a, params, rename)),
                Box::new(self.rewrite_expr(b, params, rename)),
                Box::new(self.rewrite_expr(c, params, rename)),
            ),
            Expr::Concat(parts) => Expr::Concat(
                parts
                    .iter()
                    .map(|p| self.rewrite_expr(p, params, rename))
                    .collect(),
            ),
            Expr::Replicate(n, e) => Expr::Replicate(
                Box::new(self.rewrite_expr(n, params, rename)),
                Box::new(self.rewrite_expr(e, params, rename)),
            ),
            Expr::SystemCall(k, args) => Expr::SystemCall(
                *k,
                args.iter()
                    .map(|a| self.rewrite_expr(a, params, rename))
                    .collect(),
            ),
        }
    }

    fn rewrite_lvalue(
        &self,
        lv: &LValue,
        params: &BTreeMap<String, Bits>,
        rename: &dyn Fn(&str) -> String,
    ) -> LValue {
        match lv {
            LValue::Ident(n) => LValue::Ident(rename(n)),
            LValue::Index(n, e) => LValue::Index(rename(n), self.rewrite_expr(e, params, rename)),
            LValue::Slice(n, a, b) => LValue::Slice(
                rename(n),
                self.rewrite_expr(a, params, rename),
                self.rewrite_expr(b, params, rename),
            ),
            LValue::Concat(parts) => LValue::Concat(
                parts
                    .iter()
                    .map(|p| self.rewrite_lvalue(p, params, rename))
                    .collect(),
            ),
        }
    }

    fn rewrite_stmt(
        &self,
        stmt: &Stmt,
        params: &BTreeMap<String, Bits>,
        rename: &dyn Fn(&str) -> String,
    ) -> Stmt {
        match stmt {
            Stmt::Block(stmts) => Stmt::Block(
                stmts
                    .iter()
                    .map(|s| self.rewrite_stmt(s, params, rename))
                    .collect(),
            ),
            Stmt::Fork(stmts) => Stmt::Fork(
                stmts
                    .iter()
                    .map(|s| self.rewrite_stmt(s, params, rename))
                    .collect(),
            ),
            Stmt::Blocking(a) => Stmt::Blocking(Assign {
                lhs: self.rewrite_lvalue(&a.lhs, params, rename),
                rhs: self.rewrite_expr(&a.rhs, params, rename),
            }),
            Stmt::NonBlocking(a) => Stmt::NonBlocking(Assign {
                lhs: self.rewrite_lvalue(&a.lhs, params, rename),
                rhs: self.rewrite_expr(&a.rhs, params, rename),
            }),
            Stmt::If { cond, then, other } => Stmt::If {
                cond: self.rewrite_expr(cond, params, rename),
                then: Box::new(self.rewrite_stmt(then, params, rename)),
                other: other
                    .as_ref()
                    .map(|s| Box::new(self.rewrite_stmt(s, params, rename))),
            },
            Stmt::Case {
                expr,
                arms,
                default,
            } => Stmt::Case {
                expr: self.rewrite_expr(expr, params, rename),
                arms: arms
                    .iter()
                    .map(|arm| CaseArm {
                        labels: arm
                            .labels
                            .iter()
                            .map(|l| self.rewrite_expr(l, params, rename))
                            .collect(),
                        body: self.rewrite_stmt(&arm.body, params, rename),
                    })
                    .collect(),
                default: default
                    .as_ref()
                    .map(|s| Box::new(self.rewrite_stmt(s, params, rename))),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: Box::new(Assign {
                    lhs: self.rewrite_lvalue(&init.lhs, params, rename),
                    rhs: self.rewrite_expr(&init.rhs, params, rename),
                }),
                cond: self.rewrite_expr(cond, params, rename),
                step: Box::new(Assign {
                    lhs: self.rewrite_lvalue(&step.lhs, params, rename),
                    rhs: self.rewrite_expr(&step.rhs, params, rename),
                }),
                body: Box::new(self.rewrite_stmt(body, params, rename)),
            },
            Stmt::Repeat { count, body } => Stmt::Repeat {
                count: self.rewrite_expr(count, params, rename),
                body: Box::new(self.rewrite_stmt(body, params, rename)),
            },
            Stmt::SystemTask(t) => Stmt::SystemTask(SystemTask {
                kind: t.kind,
                args: t
                    .args
                    .iter()
                    .map(|a| self.rewrite_expr(a, params, rename))
                    .collect(),
            }),
            Stmt::Null => Stmt::Null,
        }
    }
}

fn insert_var(elab: &mut ElabModule, info: VarInfo) -> VlogResult<()> {
    if elab.vars.contains_key(&info.name) {
        return Err(VlogError::Elaborate(format!(
            "variable '{}' declared more than once",
            info.name
        )));
    }
    elab.vars.insert(info.name.clone(), info);
    Ok(())
}

/// Checks that every identifier referenced in the design is declared.
fn check_names(elab: &ElabModule) -> VlogResult<()> {
    let check_expr = |e: &Expr| -> VlogResult<()> {
        for id in e.idents() {
            if !elab.vars.contains_key(id) && !id.starts_with('`') {
                return Err(VlogError::Elaborate(format!(
                    "undeclared identifier '{}'",
                    id
                )));
            }
        }
        Ok(())
    };
    fn check_stmt(elab: &ElabModule, s: &Stmt) -> VlogResult<()> {
        let check_expr = |e: &Expr| -> VlogResult<()> {
            for id in e.idents() {
                if !elab.vars.contains_key(id) && !id.starts_with('`') {
                    return Err(VlogError::Elaborate(format!(
                        "undeclared identifier '{}'",
                        id
                    )));
                }
            }
            Ok(())
        };
        let check_lvalue = |lv: &LValue| -> VlogResult<()> {
            for t in lv.targets() {
                if !elab.vars.contains_key(t) {
                    return Err(VlogError::Elaborate(format!(
                        "assignment to undeclared variable '{}'",
                        t
                    )));
                }
            }
            Ok(())
        };
        match s {
            Stmt::Block(v) | Stmt::Fork(v) => v.iter().try_for_each(|s| check_stmt(elab, s)),
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
                check_lvalue(&a.lhs)?;
                check_expr(&a.rhs)
            }
            Stmt::If { cond, then, other } => {
                check_expr(cond)?;
                check_stmt(elab, then)?;
                other.as_ref().map_or(Ok(()), |s| check_stmt(elab, s))
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                check_expr(expr)?;
                for arm in arms {
                    arm.labels.iter().try_for_each(&check_expr)?;
                    check_stmt(elab, &arm.body)?;
                }
                default.as_ref().map_or(Ok(()), |s| check_stmt(elab, s))
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                check_lvalue(&init.lhs)?;
                check_expr(&init.rhs)?;
                check_expr(cond)?;
                check_lvalue(&step.lhs)?;
                check_expr(&step.rhs)?;
                check_stmt(elab, body)
            }
            Stmt::Repeat { count, body } => {
                check_expr(count)?;
                check_stmt(elab, body)
            }
            Stmt::SystemTask(t) => t.args.iter().try_for_each(&check_expr),
            Stmt::Null => Ok(()),
        }
    }
    for a in &elab.assigns {
        check_expr(&a.rhs)?;
        for t in a.lhs.targets() {
            if !elab.vars.contains_key(t) {
                return Err(VlogError::Elaborate(format!(
                    "continuous assignment to undeclared variable '{}'",
                    t
                )));
            }
        }
    }
    for b in &elab.always {
        for e in &b.events {
            check_expr(&e.expr)?;
        }
        check_stmt(elab, &b.body)?;
    }
    for s in &elab.initials {
        check_stmt(elab, s)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn elaborates_counter() {
        let m = compile(
            r#"
            module Counter(input wire clock, output wire [7:0] out);
                reg [7:0] count = 8'd5;
                always @(posedge clock) count <= count + 1;
                assign out = count;
            endmodule
        "#,
            "Counter",
        )
        .unwrap();
        assert_eq!(m.vars["count"].width, 8);
        assert_eq!(m.vars["count"].init.as_ref().unwrap().to_u64(), 5);
        assert_eq!(m.vars["out"].port, Some(PortDir::Output));
        assert_eq!(m.always.len(), 1);
        assert_eq!(m.assigns.len(), 1);
        assert_eq!(m.total_state_bits(), 8);
    }

    #[test]
    fn wire_initialisers_become_assigns() {
        let m = compile(
            r#"
            module M(input wire clock);
                wire [31:0] x = 1, y = x + 1;
            endmodule
        "#,
            "M",
        )
        .unwrap();
        assert_eq!(m.assigns.len(), 2);
        assert_eq!(m.vars["x"].kind, NetKind::Wire);
    }

    #[test]
    fn parameters_fold_into_literals() {
        let m = compile(
            r#"
            module M(input wire clock);
                parameter WIDTH = 16;
                localparam DEPTH = WIDTH * 2;
                reg [WIDTH-1:0] data = 0;
                reg [7:0] mem [0:DEPTH-1];
            endmodule
        "#,
            "M",
        )
        .unwrap();
        assert_eq!(m.vars["data"].width, 16);
        assert_eq!(m.vars["mem"].depth, Some(32));
    }

    #[test]
    fn flattens_instances() {
        let m = compile(
            r#"
            module Sub(input wire clock, input wire [7:0] a, output wire [7:0] b);
                reg [7:0] acc = 0;
                always @(posedge clock) acc <= acc + a;
                assign b = acc;
            endmodule
            module Top(input wire clock, output wire [7:0] out);
                wire [7:0] doubled = 2;
                Sub s(.clock(clock), .a(doubled), .b(out));
            endmodule
        "#,
            "Top",
        )
        .unwrap();
        assert!(
            m.vars.contains_key("s__acc"),
            "sub reg should be prefixed: {:?}",
            m.vars.keys()
        );
        assert_eq!(m.always.len(), 1);
        // `out` is aliased to the sub's port, so the sub's assign drives it.
        assert!(m.assigns.iter().any(|a| a.lhs.targets() == vec!["out"]));
    }

    #[test]
    fn positional_connections_work() {
        let m = compile(
            r#"
            module Sub(input wire clock, input wire [7:0] a);
                reg [7:0] r = 0;
                always @(posedge clock) r <= a;
            endmodule
            module Top(input wire clock);
                wire [7:0] x = 3;
                Sub s(clock, x);
            endmodule
        "#,
            "Top",
        )
        .unwrap();
        assert!(m.vars.contains_key("s__r"));
    }

    #[test]
    fn expression_connections_create_nets() {
        let m = compile(
            r#"
            module Sub(input wire [7:0] a);
                wire [7:0] w = a;
            endmodule
            module Top(input wire clock);
                wire [7:0] x = 3;
                Sub s(.a(x + 1));
            endmodule
        "#,
            "Top",
        )
        .unwrap();
        assert!(m.vars.contains_key("s__a"));
        assert!(m.assigns.iter().any(|a| a.lhs.targets() == vec!["s__a"]));
    }

    #[test]
    fn missing_module_is_an_error() {
        let err = compile("module Top(); Sub s(); endmodule", "Top").unwrap_err();
        assert!(matches!(err, VlogError::Elaborate(_)));
        let err = compile("module Top(); endmodule", "Missing").unwrap_err();
        assert!(format!("{}", err).contains("not found"));
    }

    #[test]
    fn undeclared_identifier_is_an_error() {
        let err = compile(
            "module M(input wire clock); always @(posedge clock) x <= 1; endmodule",
            "M",
        )
        .unwrap_err();
        assert!(format!("{}", err).contains("undeclared"));
    }

    #[test]
    fn duplicate_declaration_is_an_error() {
        let err =
            compile("module M(input wire clock); wire a; wire a; endmodule", "M").unwrap_err();
        assert!(format!("{}", err).contains("more than once"));
    }

    #[test]
    fn non_volatile_attribute_is_recorded() {
        let m = compile(
            r#"
            module M(input wire clock);
                (* non_volatile *) reg [31:0] x = 0;
                reg [31:0] y = 0;
            endmodule
        "#,
            "M",
        )
        .unwrap();
        assert!(m.vars["x"].non_volatile);
        assert!(!m.vars["y"].non_volatile);
    }

    #[test]
    fn width_of_expressions() {
        let m = compile(
            r#"
            module M(input wire clock);
                reg [15:0] a = 0;
                reg [7:0] b = 0;
            endmodule
        "#,
            "M",
        )
        .unwrap();
        let e = crate::parser::parse_expr("a + b").unwrap();
        assert_eq!(m.width_of(&e), 16);
        let e = crate::parser::parse_expr("a == b").unwrap();
        assert_eq!(m.width_of(&e), 1);
        let e = crate::parser::parse_expr("{a, b}").unwrap();
        assert_eq!(m.width_of(&e), 24);
        let e = crate::parser::parse_expr("a[11:4]").unwrap();
        assert_eq!(m.width_of(&e), 8);
    }

    #[test]
    fn total_state_bits_counts_memories() {
        let m = compile(
            r#"
            module M(input wire clock);
                reg [31:0] r = 0;
                reg [7:0] mem [0:255];
            endmodule
        "#,
            "M",
        )
        .unwrap();
        assert_eq!(m.total_state_bits(), 32 + 8 * 256);
    }
}
