//! Pretty-printer: turns ASTs back into Verilog source text.
//!
//! The SYNERGY hypervisor coalesces sub-programs by concatenating their *source
//! text* into a single monolithic program (§4.1 of the paper). This module provides
//! the emission side of that path, and is also used in tests to round-trip
//! transformed designs through the parser.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole source file.
pub fn print_file(file: &SourceFile) -> String {
    file.modules
        .iter()
        .map(print_module)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a single module declaration.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let ports = m
        .ports
        .iter()
        .map(|p| {
            let range = p
                .range
                .as_ref()
                .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                .unwrap_or_default();
            format!(
                "{} {}{} {}",
                p.dir,
                if p.is_reg { "reg" } else { "wire" },
                range,
                p.name
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "module {}({});", m.name, ports);
    for item in &m.items {
        out.push_str(&print_item(item, 1));
    }
    out.push_str("endmodule\n");
    out
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

fn print_item(item: &Item, level: usize) -> String {
    let pad = indent(level);
    match item {
        Item::Decl(d) => {
            let attrs = if d.attributes.is_empty() {
                String::new()
            } else {
                format!(
                    "(* {} *) ",
                    d.attributes
                        .iter()
                        .map(|a| a.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let range = d
                .range
                .as_ref()
                .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                .unwrap_or_default();
            let mem = d
                .mem_range
                .as_ref()
                .map(|r| format!(" [{}:{}]", print_expr(&r.msb), print_expr(&r.lsb)))
                .unwrap_or_default();
            let init = d
                .init
                .as_ref()
                .map(|e| format!(" = {}", print_expr(e)))
                .unwrap_or_default();
            format!(
                "{}{}{}{} {}{}{};\n",
                pad, attrs, d.kind, range, d.name, mem, init
            )
        }
        Item::Param(p) => format!(
            "{}{} {} = {};\n",
            pad,
            if p.local { "localparam" } else { "parameter" },
            p.name,
            print_expr(&p.value)
        ),
        Item::ContinuousAssign(a) => format!(
            "{}assign {} = {};\n",
            pad,
            print_lvalue(&a.lhs),
            print_expr(&a.rhs)
        ),
        Item::Always(b) => {
            let events = if b.events.is_empty() {
                "*".to_string()
            } else {
                format!(
                    "({})",
                    b.events
                        .iter()
                        .map(|e| match e.edge {
                            Edge::Pos => format!("posedge {}", print_expr(&e.expr)),
                            Edge::Neg => format!("negedge {}", print_expr(&e.expr)),
                            Edge::Any => print_expr(&e.expr),
                        })
                        .collect::<Vec<_>>()
                        .join(" or ")
                )
            };
            format!(
                "{}always @{}\n{}",
                pad,
                events,
                print_stmt(&b.body, level + 1)
            )
        }
        Item::Initial(s) => format!("{}initial\n{}", pad, print_stmt(s, level + 1)),
        Item::Instance(i) => {
            let conns = i
                .connections
                .iter()
                .map(|c| match (&c.port, &c.expr) {
                    (Some(p), Some(e)) => format!(".{}({})", p, print_expr(e)),
                    (Some(p), None) => format!(".{}()", p),
                    (None, Some(e)) => print_expr(e),
                    (None, None) => String::new(),
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}{} {}({});\n", pad, i.module, i.name, conns)
        }
    }
}

/// Renders a statement at the given indentation level.
pub fn print_stmt(stmt: &Stmt, level: usize) -> String {
    let pad = indent(level);
    match stmt {
        Stmt::Block(stmts) => {
            let mut out = format!("{}begin\n", pad);
            for s in stmts {
                out.push_str(&print_stmt(s, level + 1));
            }
            let _ = writeln!(out, "{}end", pad);
            out
        }
        Stmt::Fork(stmts) => {
            let mut out = format!("{}fork\n", pad);
            for s in stmts {
                out.push_str(&print_stmt(s, level + 1));
            }
            let _ = writeln!(out, "{}join", pad);
            out
        }
        Stmt::Blocking(a) => format!(
            "{}{} = {};\n",
            pad,
            print_lvalue(&a.lhs),
            print_expr(&a.rhs)
        ),
        Stmt::NonBlocking(a) => {
            format!(
                "{}{} <= {};\n",
                pad,
                print_lvalue(&a.lhs),
                print_expr(&a.rhs)
            )
        }
        Stmt::If { cond, then, other } => {
            let mut out = format!(
                "{}if ({})\n{}",
                pad,
                print_expr(cond),
                print_stmt(then, level + 1)
            );
            if let Some(e) = other {
                let _ = writeln!(out, "{}else", pad);
                out.push_str(&print_stmt(e, level + 1));
            }
            out
        }
        Stmt::Case {
            expr,
            arms,
            default,
        } => {
            let mut out = format!("{}case ({})\n", pad, print_expr(expr));
            for arm in arms {
                let labels = arm
                    .labels
                    .iter()
                    .map(print_expr)
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "{}  {}:", pad, labels);
                out.push_str(&print_stmt(&arm.body, level + 2));
            }
            if let Some(d) = default {
                let _ = writeln!(out, "{}  default:", pad);
                out.push_str(&print_stmt(d, level + 2));
            }
            let _ = writeln!(out, "{}endcase", pad);
            out
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            format!(
                "{}for ({} = {}; {}; {} = {})\n{}",
                pad,
                print_lvalue(&init.lhs),
                print_expr(&init.rhs),
                print_expr(cond),
                print_lvalue(&step.lhs),
                print_expr(&step.rhs),
                print_stmt(body, level + 1)
            )
        }
        Stmt::Repeat { count, body } => format!(
            "{}repeat ({})\n{}",
            pad,
            print_expr(count),
            print_stmt(body, level + 1)
        ),
        Stmt::SystemTask(t) => {
            if t.args.is_empty() {
                format!("{}{};\n", pad, t.kind)
            } else {
                format!(
                    "{}{}({});\n",
                    pad,
                    t.kind,
                    t.args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                )
            }
        }
        Stmt::Null => format!("{};\n", pad),
    }
}

/// Renders an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Index(n, e) => format!("{}[{}]", n, print_expr(e)),
        LValue::Slice(n, a, b) => format!("{}[{}:{}]", n, print_expr(a), print_expr(b)),
        LValue::Concat(parts) => format!(
            "{{{}}}",
            parts
                .iter()
                .map(print_lvalue)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Renders an expression with full parenthesisation (safe but verbose).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(b) => format!("{}'h{}", b.width(), b.to_hex_string()),
        Expr::StringLit(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::Ident(n) => n.clone(),
        Expr::Index(e, i) => format!("{}[{}]", print_expr(e), print_expr(i)),
        Expr::Slice(e, a, b) => format!("{}[{}:{}]", print_expr(e), print_expr(a), print_expr(b)),
        Expr::Unary(op, a) => {
            let op = match op {
                UnaryOp::Not => "~",
                UnaryOp::LogicalNot => "!",
                UnaryOp::Neg => "-",
                UnaryOp::Plus => "+",
                UnaryOp::ReduceAnd => "&",
                UnaryOp::ReduceOr => "|",
                UnaryOp::ReduceXor => "^",
            };
            format!("({}{})", op, print_expr(a))
        }
        Expr::Binary(op, a, b) => {
            let op = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::LogicalAnd => "&&",
                BinaryOp::LogicalOr => "||",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::AShr => ">>>",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
            };
            format!("({} {} {})", print_expr(a), op, print_expr(b))
        }
        Expr::Ternary(c, a, b) => format!(
            "({} ? {} : {})",
            print_expr(c),
            print_expr(a),
            print_expr(b)
        ),
        Expr::Concat(parts) => format!(
            "{{{}}}",
            parts.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Replicate(n, e) => format!("{{{}{{{}}}}}", print_expr(n), print_expr(e)),
        Expr::SystemCall(kind, args) => {
            if args.is_empty() {
                format!("{}", kind)
            } else {
                format!(
                    "{}({})",
                    kind,
                    args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn round_trips_counter_module() {
        let src = r#"
            module Counter(input wire clock, output wire [7:0] out);
                reg [7:0] count = 0;
                always @(posedge clock) count <= count + 1;
                assign out = count;
            endmodule
        "#;
        let file = parse(src).unwrap();
        let printed = print_file(&file);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(file.modules[0].name, reparsed.modules[0].name);
        assert_eq!(file.modules[0].items.len(), reparsed.modules[0].items.len());
    }

    #[test]
    fn round_trips_control_flow() {
        let src = r#"
            module M(input wire clock);
                reg [3:0] s = 0;
                reg [7:0] mem [0:15];
                integer i = 0;
                always @(posedge clock) begin
                    if (s == 0) s <= 1; else s <= 0;
                    case (s)
                        1: mem[0] <= 8'hff;
                        default: mem[1] <= 0;
                    endcase
                    for (i = 0; i < 4; i = i + 1) mem[i] <= i;
                    $display("s=", s);
                end
            endmodule
        "#;
        let file = parse(src).unwrap();
        let printed = print_file(&file);
        let reparsed = parse(&printed).unwrap();
        let printed2 = print_file(&reparsed);
        assert_eq!(
            printed, printed2,
            "printer should be a fixed point after one round trip"
        );
    }

    #[test]
    fn prints_expressions() {
        let e = crate::parser::parse_expr("a + b * 2").unwrap();
        assert_eq!(print_expr(&e), "(a + (b * 32'h00000002))");
        let e = crate::parser::parse_expr("c ? a : b").unwrap();
        assert_eq!(print_expr(&e), "(c ? a : b)");
        let e = crate::parser::parse_expr("{a, b}").unwrap();
        assert_eq!(print_expr(&e), "{a, b}");
    }

    #[test]
    fn replication_round_trips_through_parser() {
        let e = crate::parser::parse_expr("{4{2'b10}}").unwrap();
        let printed = print_expr(&e);
        let reparsed = crate::parser::parse_expr(&printed).unwrap();
        let v = crate::parser::const_eval(&reparsed, &|_| None).unwrap();
        assert_eq!(v.to_u64(), 0xaa);
    }
}
