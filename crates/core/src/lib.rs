//! # synergy
//!
//! The top-level facade for the SYNERGY FPGA-virtualization reproduction
//! (*Compiler-Driven FPGA Virtualization with SYNERGY*, ASPLOS 2021).
//!
//! SYNERGY virtualizes FPGAs at the language level: a compiler transformation
//! rewrites Verilog programs so they can yield control to software at
//! sub-clock-tick granularity, which gives the runtime everything it needs for
//! suspend/resume, workload migration, and spatial/temporal multiplexing — on
//! unmodified programs and stock hardware.
//!
//! This crate re-exports the individual layers and provides [`SynergyVm`], a
//! convenience wrapper that wires them together the way the paper's evaluation
//! does: a cluster of simulated devices, a shared bitstream cache, one hypervisor
//! per device, and the Table-1 benchmark suite.
//!
//! ## Layer map
//!
//! | Layer | Crate | Paper section |
//! |-------|-------|---------------|
//! | Verilog frontend | [`vlog`] | §2 |
//! | Software engine (interpreter) | [`interp`] | §2.1 |
//! | Compiled software engine (netlist IR + bytecode) | [`codegen`] | §2.1 |
//! | Compiler transformations | [`transform`] | §3 |
//! | Simulated FPGA substrate | [`fpga`] | §5.1, §6 |
//! | Runtime + engines | [`runtime`] | §2.1, §3.5 |
//! | AmorphOS protection layer | [`amorphos`] | §2.2, §5.2 |
//! | Hypervisor + cluster | [`hv`] | §4 |
//! | Benchmarks | [`workloads`] | Table 1 |
//!
//! ## Quickstart
//!
//! ```
//! use synergy::{Device, SynergyVm};
//!
//! let mut vm = SynergyVm::new();
//! let de10 = vm.add_device(Device::de10());
//! let app = vm.launch_benchmark(de10, "bitcoin", false)?;
//! vm.deploy(de10, app)?;
//! vm.run_round(de10, 0.0001)?;
//! assert!(vm.metric(de10, app)? > 0);
//! # Ok::<(), synergy::SynergyError>(())
//! ```

#![warn(missing_docs)]

pub use synergy_amorphos as amorphos;
pub use synergy_codegen as codegen;
pub use synergy_fpga as fpga;
pub use synergy_hv as hv;
pub use synergy_interp as interp;
pub use synergy_runtime as runtime;
pub use synergy_snapshot as snapshot;
pub use synergy_telemetry as telemetry;
pub use synergy_transform as transform;
pub use synergy_vlog as vlog;
pub use synergy_workloads as workloads;

pub use synergy_amorphos::DomainId;
pub use synergy_codegen::{CompiledProgram, CompiledSim};
pub use synergy_fpga::{BitstreamCache, Device, RamStyle, SynthOptions, SynthReport};
pub use synergy_hv::{
    AppId, Cluster, ControlConfig, ControlPlane, DeployOutcome, FaultKind, FaultPlan, Hypervisor,
    NodeId, RecoveryReport, RoundStats, SchedPolicy, TenantSpec,
};
pub use synergy_opt as opt;
pub use synergy_runtime::{
    CheckpointError, CompiledTier, EnginePolicy, ExecMode, OptLevel, Runtime, RuntimeEvent,
};
pub use synergy_snapshot::SnapshotError;
pub use synergy_telemetry::{FlightRecorder, Namespace, Registry, Telemetry};
pub use synergy_transform::{transform as transform_design, TransformOptions, Transformed};
pub use synergy_vlog::{Bits, VlogError};
pub use synergy_workloads::{Benchmark, Style};

use std::fmt;

/// Errors surfaced by the [`SynergyVm`] facade.
#[derive(Debug)]
pub enum SynergyError {
    /// An error from the Verilog frontend, interpreter, or transformations.
    Vlog(VlogError),
    /// An error from the hypervisor layer.
    Hypervisor(synergy_hv::HvError),
    /// The requested benchmark does not exist.
    UnknownBenchmark(String),
}

impl fmt::Display for SynergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynergyError::Vlog(e) => write!(f, "{}", e),
            SynergyError::Hypervisor(e) => write!(f, "{}", e),
            SynergyError::UnknownBenchmark(name) => write!(f, "unknown benchmark '{}'", name),
        }
    }
}

impl std::error::Error for SynergyError {}

impl From<VlogError> for SynergyError {
    fn from(e: VlogError) -> Self {
        SynergyError::Vlog(e)
    }
}

impl From<synergy_hv::HvError> for SynergyError {
    fn from(e: synergy_hv::HvError) -> Self {
        SynergyError::Hypervisor(e)
    }
}

/// Default number of input records generated for streaming benchmarks.
const DEFAULT_STREAM_LEN: usize = 1 << 20;

/// A ready-to-use SYNERGY deployment: a cluster of devices, their hypervisors, a
/// shared bitstream cache, and helpers for launching the paper's benchmarks.
pub struct SynergyVm {
    cluster: Cluster,
    next_domain: u64,
    stream_len: usize,
}

impl Default for SynergyVm {
    fn default() -> Self {
        Self::new()
    }
}

impl SynergyVm {
    /// Creates an empty virtual deployment.
    pub fn new() -> Self {
        SynergyVm {
            cluster: Cluster::new(),
            next_domain: 1,
            stream_len: DEFAULT_STREAM_LEN,
        }
    }

    /// Overrides how many input records are generated for streaming benchmarks.
    pub fn set_stream_len(&mut self, len: usize) {
        self.stream_len = len.max(1);
    }

    /// Sets the software-engine selection policy for every node: under
    /// [`EnginePolicy::Auto`] programs that are not resident on a fabric run
    /// on the compiled engine (falling back to the interpreter for designs
    /// with uncompilable constructs) instead of being interpreted.
    pub fn set_engine_policy(&mut self, policy: EnginePolicy) {
        self.cluster.set_engine_policy(policy);
    }

    /// Selects the compiled-engine execution tier for every node: the
    /// register-allocated tier (default) or the stack-bytecode tier
    /// (diagnostics / differential baselines).
    pub fn set_compiled_tier(&mut self, tier: CompiledTier) {
        self.cluster.set_compiled_tier(tier);
    }

    /// Selects the netlist optimization level applied when programs are
    /// lowered for the compiled engine on every node: [`OptLevel::O1`]
    /// (default, full pass pipeline) or [`OptLevel::O0`] (no optimization —
    /// diagnostics / differential baselines). Also settable process-wide via
    /// the `SYNERGY_OPT` environment variable. Optimization never changes
    /// observable behaviour, so the level can be flipped at any point; it
    /// takes effect for programs lowered afterwards.
    ///
    /// ```
    /// use synergy::{OptLevel, SynergyVm};
    ///
    /// let mut vm = SynergyVm::new();
    /// vm.set_opt_level(OptLevel::O0); // pin the unoptimized baseline
    /// vm.set_opt_level(OptLevel::O1); // back to the default
    /// ```
    pub fn set_opt_level(&mut self, level: OptLevel) {
        self.cluster.set_opt_level(level);
    }

    /// Sets the round-scheduling policy for every node: under
    /// [`SchedPolicy::Parallel`] each hypervisor executes independent
    /// tenants' rounds concurrently on a work-stealing worker pool, with
    /// results bit-identical to [`SchedPolicy::Sequential`].
    pub fn set_sched_policy(&mut self, sched: SchedPolicy) {
        self.cluster.set_sched_policy(sched);
    }

    /// Adds a device (node) to the deployment.
    pub fn add_device(&mut self, device: Device) -> NodeId {
        self.cluster.add_node(device)
    }

    /// The underlying cluster, for lower-level control.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Launches one of the Table-1 benchmarks on a node (software execution).
    ///
    /// `quiescent` selects the `$yield` variant used by the §6.3 experiments.
    ///
    /// # Errors
    ///
    /// Returns [`SynergyError::UnknownBenchmark`] for unknown names or a
    /// compilation error if the benchmark fails to elaborate.
    pub fn launch_benchmark(
        &mut self,
        node: NodeId,
        name: &str,
        quiescent: bool,
    ) -> Result<AppId, SynergyError> {
        let bench = synergy_workloads::by_name(name)
            .ok_or_else(|| SynergyError::UnknownBenchmark(name.to_string()))?;
        let mut runtime = Runtime::new(
            bench.name.clone(),
            bench.source_for(quiescent),
            &bench.top,
            &bench.clock,
        )?;
        if let Some(path) = &bench.input_path {
            runtime.add_file(
                path.clone(),
                synergy_workloads::input_data(&bench.name, self.stream_len),
            );
        }
        // Streaming benchmarks open their input in software before any migration,
        // exactly as the paper's workflow does.
        runtime.run_ticks(2)?;
        let domain = DomainId(self.next_domain);
        self.next_domain += 1;
        let io_bound = bench.style == Style::Streaming;
        Ok(self
            .cluster
            .node_mut(node)
            .connect(runtime, domain, io_bound))
    }

    /// Launches an arbitrary Verilog program on a node (software execution).
    ///
    /// # Errors
    ///
    /// Returns a compilation error if the program fails to elaborate.
    pub fn launch_source(
        &mut self,
        node: NodeId,
        name: &str,
        source: &str,
        top: &str,
        clock: &str,
    ) -> Result<AppId, SynergyError> {
        let runtime = Runtime::new(name, source, top, clock)?;
        let domain = DomainId(self.next_domain);
        self.next_domain += 1;
        Ok(self.cluster.node_mut(node).connect(runtime, domain, false))
    }

    /// Deploys an application to its node's FPGA fabric.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (compilation, admission, placement).
    pub fn deploy(&mut self, node: NodeId, app: AppId) -> Result<DeployOutcome, SynergyError> {
        Ok(self.cluster.node_mut(node).deploy(app)?)
    }

    /// Runs one scheduling round of `dt` simulated seconds on a node.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors.
    pub fn run_round(&mut self, node: NodeId, dt: f64) -> Result<Vec<RoundStats>, SynergyError> {
        Ok(self.cluster.node_mut(node).run_round(dt)?)
    }

    /// Migrates a running application between nodes, preserving its state.
    ///
    /// Goes through the durable checkpoint wire format
    /// ([`Cluster::live_migrate`]): the tenant is serialized to bytes on the
    /// source node and rebuilt from them on the target, exactly as a
    /// cross-host migration or crash recovery would.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors from either node.
    pub fn migrate(
        &mut self,
        from: NodeId,
        app: AppId,
        to: NodeId,
    ) -> Result<(AppId, DeployOutcome), SynergyError> {
        let domain = DomainId(self.next_domain);
        self.next_domain += 1;
        Ok(self.cluster.live_migrate(from, app, to, domain, false)?)
    }

    /// Reads an application's work-unit counter (the benchmark's metric variable).
    ///
    /// # Errors
    ///
    /// Returns an error if the application or variable does not exist.
    pub fn metric(&self, node: NodeId, app: AppId) -> Result<u64, SynergyError> {
        let runtime = self.cluster.node(node).app(app)?;
        // Benchmarks expose their counter as `<metric>_lo`; fall back to ticks for
        // arbitrary programs.
        for bench in synergy_workloads::all() {
            if bench.name == runtime.name() {
                return Ok(runtime.get_bits(&bench.metric_var)?.to_u64());
            }
        }
        Ok(runtime.ticks())
    }

    /// Reads any scalar variable from a running application.
    ///
    /// # Errors
    ///
    /// Returns an error if the application or variable does not exist.
    pub fn read_var(&self, node: NodeId, app: AppId, var: &str) -> Result<Bits, SynergyError> {
        Ok(self.cluster.node(node).app(app)?.get_bits(var)?)
    }

    /// Access to an application's runtime.
    ///
    /// # Errors
    ///
    /// Returns an error if the application does not exist.
    pub fn app(&self, node: NodeId, app: AppId) -> Result<&Runtime, SynergyError> {
        Ok(self.cluster.node(node).app(app)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow_works() {
        let mut vm = SynergyVm::new();
        vm.set_stream_len(1024);
        let de10 = vm.add_device(Device::de10());
        let app = vm.launch_benchmark(de10, "bitcoin", false).unwrap();
        vm.deploy(de10, app).unwrap();
        vm.run_round(de10, 0.0001).unwrap();
        assert!(vm.metric(de10, app).unwrap() > 0);
        assert_eq!(
            vm.app(de10, app).unwrap().mode(),
            ExecMode::Hardware("de10".into())
        );
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let mut vm = SynergyVm::new();
        let node = vm.add_device(Device::f1());
        assert!(matches!(
            vm.launch_benchmark(node, "nonesuch", false),
            Err(SynergyError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn migration_through_the_facade_preserves_progress() {
        let mut vm = SynergyVm::new();
        vm.set_stream_len(1024);
        let de10 = vm.add_device(Device::de10());
        let f1 = vm.add_device(Device::f1());
        let app = vm.launch_benchmark(de10, "df", false).unwrap();
        vm.deploy(de10, app).unwrap();
        vm.run_round(de10, 0.0001).unwrap();
        let before = vm.metric(de10, app).unwrap();
        let (app, _) = vm.migrate(de10, app, f1).unwrap();
        assert_eq!(vm.metric(f1, app).unwrap(), before);
        vm.run_round(f1, 0.0001).unwrap();
        assert!(vm.metric(f1, app).unwrap() > before);
    }

    #[test]
    fn engine_policy_runs_benchmarks_on_the_compiled_engine() {
        let mut vm = SynergyVm::new();
        vm.set_stream_len(1024);
        vm.set_engine_policy(EnginePolicy::Auto);
        let node = vm.add_device(Device::f1());
        let app = vm.launch_benchmark(node, "bitcoin", false).unwrap();
        assert_eq!(vm.app(node, app).unwrap().mode(), ExecMode::Compiled);
        vm.run_round(node, 0.001).unwrap();
        assert!(vm.metric(node, app).unwrap() > 0);
        // Deployment still moves the program onward to hardware.
        vm.deploy(node, app).unwrap();
        assert_eq!(
            vm.app(node, app).unwrap().mode(),
            ExecMode::Hardware("f1".into())
        );
    }

    #[test]
    fn custom_sources_can_be_launched() {
        let mut vm = SynergyVm::new();
        let node = vm.add_device(Device::f1());
        let app = vm
            .launch_source(
                node,
                "blinky",
                r#"module Blinky(input wire clock, output wire led);
                       reg [0:0] state = 0;
                       always @(posedge clock) state <= ~state;
                       assign led = state;
                   endmodule"#,
                "Blinky",
                "clock",
            )
            .unwrap();
        vm.deploy(node, app).unwrap();
        vm.run_round(node, 0.00005).unwrap();
        assert!(vm.app(node, app).unwrap().ticks() > 0);
    }
}
